#include "obs/flight_recorder.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/jsonl.h"

namespace roboads::obs {
namespace {

constexpr char kBundleName[] = "roboads-postmortem";

void write_key(std::ostream& os, const char* key, bool first = false) {
  json::write_field_key(os, key, first);
}

using json::write_doubles;
using json::write_ints;

// Bundle lines are parsed by the shared JSONL layer (obs/jsonl.h); this
// wrapper skips blank lines, threads the line counter, and tags every
// diagnostic with "bundle line N".
json::Fields parse_line(std::istream& is, std::size_t& line_no,
                        const char* what) {
  std::string line;
  while (std::getline(is, line)) {
    ++line_no;
    if (!line.empty()) {
      const std::string context = "bundle line " + std::to_string(line_no);
      return json::Fields(json::parse_object_line(line, context), context);
    }
  }
  throw CheckError(std::string("bundle truncated: missing ") + what +
                   " line");
}


void write_snapshot_line(std::ostream& os, std::int64_t k,
                         const DetectorStateSnapshot& snap) {
  os << '{';
  write_key(os, "event", /*first=*/true);
  os << "\"snapshot\"";
  write_key(os, "k");
  os << k;
  write_key(os, "state");
  write_doubles(os, snap.state);
  write_key(os, "state_cov");
  write_doubles(os, snap.state_cov);
  write_key(os, "weights");
  write_doubles(os, snap.weights);
  write_key(os, "health");
  write_ints(os, snap.health);
  write_key(os, "decision");
  write_ints(os, snap.decision);
  write_key(os, "iteration");
  os << snap.iteration;
  os << "}\n";
}

}  // namespace

const char* to_string(BundleTrigger trigger) {
  switch (trigger) {
    case BundleTrigger::kSensorAlarm: return "sensor_alarm";
    case BundleTrigger::kActuatorAlarm: return "actuator_alarm";
    case BundleTrigger::kQuarantine: return "quarantine";
    case BundleTrigger::kMissionFailure: return "mission_failure";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {
  ROBOADS_CHECK(config_.window >= 1, "flight recorder window must be >= 1");
  ring_.resize(config_.window);
}

void FlightRecorder::begin_mission(BundleProvenance provenance) {
  provenance_ = std::move(provenance);
  next_ = 0;
  count_ = 0;
}

FlightRecord& FlightRecorder::begin_record() {
  FlightRecord& slot = ring_[next_];
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
  return slot;
}

void FlightRecorder::annotate_truth(std::int64_t k,
                                    const std::string& truth_sensors,
                                    bool truth_actuator) {
  if (count_ == 0) return;
  FlightRecord& newest = ring_[(next_ + ring_.size() - 1) % ring_.size()];
  if (newest.k != k) return;
  newest.truth_valid = true;
  newest.truth_sensors = truth_sensors;
  newest.truth_actuator = truth_actuator;
  // Bundles triggered by iteration k were frozen inside the detector step,
  // before the mission runner could stamp this truth — patch their copy of
  // the trigger record so frozen incidents carry complete ground truth.
  for (PostmortemBundle& b : bundles_) {
    if (b.records.empty()) continue;
    FlightRecord& last = b.records.back();
    if (last.k != k || last.truth_valid) continue;
    last.truth_valid = true;
    last.truth_sensors = truth_sensors;
    last.truth_actuator = truth_actuator;
  }
}

std::size_t FlightRecorder::size() const { return count_; }

std::vector<const FlightRecord*> FlightRecorder::window() const {
  std::vector<const FlightRecord*> out;
  out.reserve(count_);
  const std::size_t oldest =
      count_ < ring_.size() ? 0 : next_;  // ring fills from slot 0
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(&ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

PostmortemBundle FlightRecorder::snapshot(BundleTrigger trigger,
                                          std::int64_t k,
                                          const std::string& detail) const {
  PostmortemBundle bundle;
  bundle.trigger = to_string(trigger);
  bundle.trigger_k = k;
  bundle.detail = detail;
  bundle.provenance = provenance_;
  bundle.records.reserve(count_);
  for (const FlightRecord* rec : window()) bundle.records.push_back(*rec);
  return bundle;
}

void FlightRecorder::trigger(BundleTrigger trigger, std::int64_t k,
                             const std::string& detail) {
  if (bundles_.size() >= config_.max_bundles) {
    ++bundles_dropped_;
    return;
  }
  bundles_.push_back(snapshot(trigger, k, detail));
}

std::vector<PostmortemBundle> FlightRecorder::take_bundles() {
  std::vector<PostmortemBundle> out = std::move(bundles_);
  bundles_.clear();
  return out;
}

void write_bundle(std::ostream& os, const PostmortemBundle& bundle) {
  // Header.
  os << '{';
  write_key(os, "event", /*first=*/true);
  os << "\"bundle\"";
  write_key(os, "name");
  os << '"' << kBundleName << '"';
  write_key(os, "version");
  os << PostmortemBundle::kSchemaVersion;
  write_key(os, "trigger");
  json::write_escaped(os, bundle.trigger);
  write_key(os, "trigger_k");
  os << bundle.trigger_k;
  write_key(os, "detail");
  json::write_escaped(os, bundle.detail);
  write_key(os, "records");
  os << bundle.records.size();
  os << "}\n";

  // Provenance.
  const BundleProvenance& p = bundle.provenance;
  os << '{';
  write_key(os, "event", /*first=*/true);
  os << "\"provenance\"";
  write_key(os, "label");
  json::write_escaped(os, p.label);
  write_key(os, "platform");
  json::write_escaped(os, p.platform);
  write_key(os, "scenario");
  json::write_escaped(os, p.scenario);
  write_key(os, "description");
  json::write_escaped(os, p.description);
  write_key(os, "seed");
  os << p.seed;
  write_key(os, "iterations");
  os << p.iterations;
  write_key(os, "dt");
  json::write_number(os, p.dt);
  write_key(os, "linear_baseline");
  os << (p.linear_baseline ? "true" : "false");
  write_key(os, "likelihood_floor");
  json::write_number(os, p.likelihood_floor);
  write_key(os, "health_enabled");
  os << (p.health_enabled ? "true" : "false");
  write_key(os, "sensor_alpha");
  json::write_number(os, p.sensor_alpha);
  write_key(os, "actuator_alpha");
  json::write_number(os, p.actuator_alpha);
  write_key(os, "sensor_window");
  os << p.sensor_window;
  write_key(os, "sensor_criteria");
  os << p.sensor_criteria;
  write_key(os, "actuator_window");
  os << p.actuator_window;
  write_key(os, "actuator_criteria");
  os << p.actuator_criteria;
  write_key(os, "modes");
  json::write_escaped(os, p.modes);
  write_key(os, "sensors");
  json::write_escaped(os, p.sensors);
  write_key(os, "sensor_dims");
  write_ints(os, p.sensor_dims);
  write_key(os, "state_dim");
  os << p.state_dim;
  write_key(os, "input_dim");
  os << p.input_dim;
  os << "}\n";

  // Warm-start snapshot: the first record's pre-step state. Per-record
  // snapshots would multiply the file size for no replay benefit — stepping
  // forward from the window start reproduces every later state exactly.
  static const DetectorStateSnapshot kEmptySnapshot;
  write_snapshot_line(
      os, bundle.records.empty() ? 0 : bundle.records.front().k,
      bundle.records.empty() ? kEmptySnapshot
                             : bundle.records.front().pre_step);

  for (const FlightRecord& r : bundle.records) {
    os << '{';
    write_key(os, "event", /*first=*/true);
    os << "\"record\"";
    write_key(os, "k");
    os << r.k;
    write_key(os, "u");
    write_doubles(os, r.u);
    write_key(os, "z");
    write_doubles(os, r.z);
    write_key(os, "availability");
    json::write_escaped(os, r.availability);
    write_key(os, "selected_mode");
    os << r.selected_mode;
    write_key(os, "mode_weights");
    write_doubles(os, r.mode_weights);
    write_key(os, "log_likelihoods");
    write_doubles(os, r.log_likelihoods);
    write_key(os, "innovation_norms");
    write_doubles(os, r.innovation_norms);
    write_key(os, "sensor_chi2");
    json::write_number(os, r.sensor_chi2);
    write_key(os, "sensor_threshold");
    json::write_number(os, r.sensor_threshold);
    write_key(os, "sensor_alarm");
    os << (r.sensor_alarm ? "true" : "false");
    write_key(os, "actuator_chi2");
    json::write_number(os, r.actuator_chi2);
    write_key(os, "actuator_threshold");
    json::write_number(os, r.actuator_threshold);
    write_key(os, "actuator_alarm");
    os << (r.actuator_alarm ? "true" : "false");
    write_key(os, "per_sensor_chi2");
    write_doubles(os, r.per_sensor_chi2);
    write_key(os, "per_sensor_threshold");
    write_doubles(os, r.per_sensor_threshold);
    write_key(os, "misbehaving");
    json::write_escaped(os, r.misbehaving);
    write_key(os, "sensor_anomaly");
    write_doubles(os, r.sensor_anomaly);
    write_key(os, "actuator_anomaly");
    write_doubles(os, r.actuator_anomaly);
    write_key(os, "mode_health");
    json::write_escaped(os, r.mode_health);
    write_key(os, "quarantined");
    os << r.quarantined;
    write_key(os, "containment");
    os << (r.containment ? "true" : "false");
    write_key(os, "truth_valid");
    os << (r.truth_valid ? "true" : "false");
    write_key(os, "truth_sensors");
    json::write_escaped(os, r.truth_sensors);
    write_key(os, "truth_actuator");
    os << (r.truth_actuator ? "true" : "false");
    os << "}\n";
  }
}

PostmortemBundle read_bundle(std::istream& is) {
  std::size_t line_no = 0;
  PostmortemBundle bundle;

  const json::Fields header = parse_line(is, line_no, "header");
  ROBOADS_CHECK_EQ(header.string("event"), std::string("bundle"),
                   "not a postmortem bundle header");
  ROBOADS_CHECK_EQ(header.string("name"), std::string(kBundleName),
                   "unknown bundle name");
  ROBOADS_CHECK_EQ(header.integer("version"),
                   static_cast<std::int64_t>(PostmortemBundle::kSchemaVersion),
                   "unsupported bundle schema version");
  bundle.trigger = header.string("trigger");
  bundle.trigger_k = header.integer("trigger_k");
  bundle.detail = header.string("detail");
  const std::int64_t record_count = header.integer("records");

  const json::Fields prov = parse_line(is, line_no, "provenance");
  ROBOADS_CHECK_EQ(prov.string("event"), std::string("provenance"),
                   "expected provenance line");
  BundleProvenance& p = bundle.provenance;
  p.label = prov.string("label");
  p.platform = prov.string("platform");
  p.scenario = prov.string("scenario");
  p.description = prov.string("description");
  p.seed = prov.integer("seed");
  p.iterations = prov.integer("iterations");
  p.dt = prov.number("dt");
  p.linear_baseline = prov.boolean("linear_baseline");
  p.likelihood_floor = prov.number("likelihood_floor");
  p.health_enabled = prov.boolean("health_enabled");
  p.sensor_alpha = prov.number("sensor_alpha");
  p.actuator_alpha = prov.number("actuator_alpha");
  p.sensor_window = prov.integer("sensor_window");
  p.sensor_criteria = prov.integer("sensor_criteria");
  p.actuator_window = prov.integer("actuator_window");
  p.actuator_criteria = prov.integer("actuator_criteria");
  p.modes = prov.string("modes");
  p.sensors = prov.string("sensors");
  p.sensor_dims = prov.integers("sensor_dims");
  p.state_dim = prov.integer("state_dim");
  p.input_dim = prov.integer("input_dim");

  const json::Fields snap = parse_line(is, line_no, "snapshot");
  ROBOADS_CHECK_EQ(snap.string("event"), std::string("snapshot"),
                   "expected snapshot line");
  DetectorStateSnapshot warm;
  warm.state = snap.numbers("state");
  warm.state_cov = snap.numbers("state_cov");
  warm.weights = snap.numbers("weights");
  warm.health = snap.integers("health");
  warm.decision = snap.integers("decision");
  warm.iteration = snap.integer("iteration");

  bundle.records.reserve(static_cast<std::size_t>(record_count));
  for (std::int64_t i = 0; i < record_count; ++i) {
    const json::Fields f = parse_line(is, line_no, "record");
    ROBOADS_CHECK_EQ(f.string("event"), std::string("record"),
                     "expected record line");
    FlightRecord r;
    r.k = f.integer("k");
    r.u = f.numbers("u");
    r.z = f.numbers("z");
    r.availability = f.string("availability");
    r.selected_mode = f.integer("selected_mode");
    r.mode_weights = f.numbers("mode_weights");
    r.log_likelihoods = f.numbers("log_likelihoods");
    r.innovation_norms = f.numbers("innovation_norms");
    r.sensor_chi2 = f.number("sensor_chi2");
    r.sensor_threshold = f.number("sensor_threshold");
    r.sensor_alarm = f.boolean("sensor_alarm");
    r.actuator_chi2 = f.number("actuator_chi2");
    r.actuator_threshold = f.number("actuator_threshold");
    r.actuator_alarm = f.boolean("actuator_alarm");
    r.per_sensor_chi2 = f.numbers("per_sensor_chi2");
    r.per_sensor_threshold = f.numbers("per_sensor_threshold");
    r.misbehaving = f.string("misbehaving");
    r.sensor_anomaly = f.numbers("sensor_anomaly");
    r.actuator_anomaly = f.numbers("actuator_anomaly");
    r.mode_health = f.string("mode_health");
    r.quarantined = f.integer("quarantined");
    r.containment = f.boolean("containment");
    r.truth_valid = f.boolean("truth_valid");
    r.truth_sensors = f.string("truth_sensors");
    r.truth_actuator = f.boolean("truth_actuator");
    bundle.records.push_back(std::move(r));
  }
  if (!bundle.records.empty()) bundle.records.front().pre_step = warm;
  return bundle;
}

void write_bundle_file(const std::string& path, const PostmortemBundle& b) {
  std::ofstream file(path);
  ROBOADS_CHECK(file.good(), "cannot open bundle file '" + path + "'");
  write_bundle(file, b);
  file.flush();
  ROBOADS_CHECK(!file.fail(), "error writing bundle file '" + path + "'");
}

PostmortemBundle read_bundle_file(const std::string& path) {
  std::ifstream file(path);
  ROBOADS_CHECK(file.good(), "cannot open bundle file '" + path + "'");
  return read_bundle(file);
}

std::string bundle_filename(const PostmortemBundle& bundle,
                            std::size_t ordinal) {
  std::string label =
      bundle.provenance.label.empty() ? "run" : bundle.provenance.label;
  for (char& c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  std::ostringstream os;
  os << label << "-b" << ordinal << "-" << bundle.trigger << "-k"
     << bundle.trigger_k << ".jsonl";
  return os.str();
}

}  // namespace roboads::obs
