// Structured per-iteration trace sink (docs/OBSERVABILITY.md).
//
// Instrumented components emit typed events — one "iteration" event per
// detector step (per-mode normalized likelihoods, innovation norms, χ²
// statistics, selected mode, sensor availability mask) plus sparse lifecycle
// events ("health_transition", "containment_floor", "mission_start",
// "mission_end"). The sink buffers events in memory and serializes them as
//
//   * JSONL — every event, one self-describing JSON object per line, for
//     machine consumption (schema pinned by tests/obs_trace_test.cc), and
//   * CSV   — the "iteration" events flattened to a wide numeric table for
//     plotting, with vector-valued fields expanded to indexed columns.
//
// Events are value types with an *ordered* field list, so the emitted key
// order — and therefore the golden JSONL — is deterministic. Emission takes
// a mutex: events originate in the serial sections of the engine/mission
// loop, so the lock is uncontended in single-mission runs and merely
// serializes interleaved missions in batched sweeps (each event carries its
// mission label).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace roboads::obs {

// Flat event payload value. Vectors of numbers cover the per-mode and
// per-sensor series; nested objects are deliberately unsupported.
using TraceValue =
    std::variant<double, std::int64_t, bool, std::string, std::vector<double>>;

struct TraceEvent {
  std::string type;    // "iteration", "health_transition", ...
  std::string label;   // mission/job label; empty outside batch sweeps
  std::size_t k = 0;   // control iteration (0 for run-level events)
  std::vector<std::pair<std::string, TraceValue>> fields;

  TraceEvent() = default;
  TraceEvent(std::string type_, std::size_t k_) : type(std::move(type_)), k(k_) {}
  TraceEvent(std::string type_, std::string label_, std::size_t k_)
      : type(std::move(type_)), label(std::move(label_)), k(k_) {}

  // Out-of-line (trace.cc): keeps the variant move un-inlined, which both
  // trims caller code size and avoids a GCC 12 -Wmaybe-uninitialized false
  // positive on inlined variant storage.
  TraceEvent& add(std::string name, TraceValue value);
};

class TraceSink {
 public:
  // Bumped whenever the emitted event schema changes; serialized into every
  // JSONL header event and checked by the golden-trace test.
  static constexpr int kSchemaVersion = 1;

  void emit(TraceEvent event);

  std::size_t size() const;
  // Snapshot of the buffered events (copy: the sink stays usable).
  std::vector<TraceEvent> events() const;

  // One JSON object per line; first line is a schema header event.
  void write_jsonl(std::ostream& os) const;
  // Flattens "iteration" events (only) into a wide CSV; the column set is
  // derived from the first iteration event.
  void write_csv(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// Structural JSONL validation (used by the CI smoke pass and the golden
// test): every line must be one syntactically well-formed flat JSON object.
// Returns the number of lines validated; throws CheckError with the line
// number on the first malformed line.
std::size_t validate_jsonl(std::istream& is);

}  // namespace roboads::obs
