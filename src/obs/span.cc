#include "obs/span.h"

#include <algorithm>

namespace roboads::obs {
namespace {

// Saturating same-clock difference: stages stamped out of order (or never
// stamped, leaving 0) yield 0, not a wrapped uint64.
std::int64_t stage_ns(std::uint64_t from, std::uint64_t to) {
  if (from == 0 || to == 0 || to < from) return 0;
  return static_cast<std::int64_t>(to - from);
}

}  // namespace

void SpanStamps::note_packet(std::uint64_t ingest_ns,
                             std::uint64_t dequeue_ns) {
  if (ingest_ns != 0) {
    if (first_ingest_ns == 0) first_ingest_ns = ingest_ns;
    first_ingest_ns = std::min(first_ingest_ns, ingest_ns);
    last_ingest_ns = std::max(last_ingest_ns, ingest_ns);
  }
  if (dequeue_ns != 0) {
    if (first_dequeue_ns == 0) first_dequeue_ns = dequeue_ns;
    first_dequeue_ns = std::min(first_dequeue_ns, dequeue_ns);
    last_dequeue_ns = std::max(last_dequeue_ns, dequeue_ns);
  }
  ++packets;
}

TraceEvent make_span_event(std::uint64_t robot, std::uint64_t k,
                           const SpanStamps& stamps,
                           const SpanOutcome& outcome) {
  TraceEvent ev("span", static_cast<std::size_t>(k));
  ev.add("robot", static_cast<std::int64_t>(robot));
  ev.add("span_version", static_cast<std::int64_t>(kSpanSchemaVersion));
  ev.add("packets", static_cast<std::int64_t>(stamps.packets));
  // Raw first-ingest stamp anchors the span on the shared steady clock so
  // spans across robots (and the service's latency histograms) line up.
  ev.add("ingest_ns", static_cast<std::int64_t>(stamps.first_ingest_ns));
  ev.add("ring_ns", stage_ns(stamps.first_ingest_ns, stamps.first_dequeue_ns));
  ev.add("reassembly_ns",
         stage_ns(stamps.first_dequeue_ns, stamps.last_dequeue_ns));
  ev.add("step_wait_ns", stage_ns(stamps.last_dequeue_ns, stamps.step_start_ns));
  ev.add("step_ns", stage_ns(stamps.step_start_ns, stamps.step_end_ns));
  ev.add("publish_ns", stage_ns(stamps.step_end_ns, stamps.publish_ns));
  ev.add("total_ns", stage_ns(stamps.first_ingest_ns, stamps.publish_ns));
  ev.add("masked", outcome.masked);
  ev.add("forced", outcome.forced);
  ev.add("sensor_alarm", outcome.sensor_alarm);
  ev.add("actuator_alarm", outcome.actuator_alarm);
  return ev;
}

}  // namespace roboads::obs
