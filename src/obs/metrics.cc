#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "obs/json.h"

namespace roboads::obs {
namespace internal {

std::size_t this_thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricStripes - 1);
  return id;
}

}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  ROBOADS_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    ROBOADS_CHECK(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly ascending");
  }
  for (Stripe& s : stripes_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::record(double v) {
  // First bucket whose upper bound admits v; everything past the last bound
  // lands in the overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Stripe& s = stripes_[internal::this_thread_stripe()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  internal::atomic_add(s.sum, v);
  internal::atomic_max(max_, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Stripe& s : stripes_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::quantile(double q) const {
  ROBOADS_CHECK(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= target) {
      return b < bounds_.size() ? bounds_[b] : max();
    }
  }
  return max();
}

const std::vector<double>& default_latency_bounds_ns() {
  static const std::vector<double> bounds = {
      250.0, 500.0, 1e3,   2.5e3, 5e3,   1e4,   2.5e4, 5e4,   1e5,
      2.5e5, 5e5,   1e6,   2.5e6, 5e6,   1e7,   2.5e7, 5e7,   1e8,
      2.5e8, 1e9};
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = static_cast<double>(h->count());
    s.sum = h->sum();
    s.mean = h->mean();
    s.p50 = h->quantile(0.50);
    s.p90 = h->quantile(0.90);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    s.max = h->max();
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const MetricSample& s : snapshot()) {
    os << "{\"metric\":";
    json::write_escaped(os, s.name);
    os << ",\"kind\":\"";
    switch (s.kind) {
      case MetricSample::Kind::kCounter: os << "counter"; break;
      case MetricSample::Kind::kGauge: os << "gauge"; break;
      case MetricSample::Kind::kHistogram: os << "histogram"; break;
    }
    os << "\",\"value\":";
    json::write_number(os, s.value);
    if (s.kind == MetricSample::Kind::kHistogram) {
      os << ",\"sum\":";
      json::write_number(os, s.sum);
      os << ",\"mean\":";
      json::write_number(os, s.mean);
      os << ",\"p50\":";
      json::write_number(os, s.p50);
      os << ",\"p90\":";
      json::write_number(os, s.p90);
      os << ",\"p95\":";
      json::write_number(os, s.p95);
      os << ",\"p99\":";
      json::write_number(os, s.p99);
      os << ",\"max\":";
      json::write_number(os, s.max);
      os << ",\"buckets\":[";
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        if (b > 0) os << ',';
        os << s.buckets[b];
      }
      os << ']';
    }
    os << "}\n";
  }
}

}  // namespace roboads::obs
