#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/jsonl.h"

namespace roboads::obs {
namespace internal {

std::size_t this_thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricStripes - 1);
  return id;
}

}  // namespace internal

namespace {

void check_bounds(const std::vector<double>& bounds) {
  ROBOADS_CHECK(!bounds.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    ROBOADS_CHECK(bounds[i - 1] < bounds[i],
                  "histogram bounds must be strictly ascending");
  }
}

std::size_t bucket_index(const std::vector<double>& bounds, double v) {
  // First bucket whose upper bound admits v; everything past the last bound
  // lands in the overflow bucket.
  return static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double max,
                       double q) {
  ROBOADS_CHECK(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * total));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= target) {
      return b < bounds.size() ? bounds[b] : max;
    }
  }
  return max;
}

}  // namespace

HistogramSnapshot HistogramSnapshot::with_bounds(std::vector<double> bounds) {
  check_bounds(bounds);
  HistogramSnapshot h;
  h.buckets.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  return h;
}

double HistogramSnapshot::stddev() const {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  // Unbiased sample variance from the moment sums; clamp the numerically
  // cancelled negative tail to zero.
  const double var = std::max(0.0, (sum_squares - sum * sum / n) / (n - 1.0));
  return std::sqrt(var);
}

double HistogramSnapshot::ci95_half_width() const {
  if (count < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count));
}

void HistogramSnapshot::record(double v) {
  ROBOADS_CHECK(!bounds.empty(), "recording into a bound-less snapshot");
  ++buckets[bucket_index(bounds, v)];
  ++count;
  sum += v;
  sum_squares += v * v;
  if (v > max) max = v;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.bounds.empty()) {
    ROBOADS_CHECK(other.count == 0, "snapshot with samples but no bounds");
    return;
  }
  if (bounds.empty()) {
    ROBOADS_CHECK(count == 0, "snapshot with samples but no bounds");
    *this = other;
    return;
  }
  ROBOADS_CHECK(bounds == other.bounds,
                "merging histograms with different bucket bounds");
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
  sum_squares += other.sum_squares;
  if (other.max > max) max = other.max;
}

double HistogramSnapshot::quantile(double q) const {
  return bucket_quantile(bounds, buckets, max, q);
}

HistogramSnapshot merge_snapshots(const std::vector<HistogramSnapshot>& parts) {
  HistogramSnapshot merged;
  for (const HistogramSnapshot& part : parts) merged.merge(part);
  return merged;
}

void write_histogram(std::ostream& os, const HistogramSnapshot& h) {
  os << '{';
  json::write_field_key(os, "bounds", /*first=*/true);
  json::write_doubles(os, h.bounds);
  json::write_field_key(os, "buckets");
  os << '[';
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    if (b > 0) os << ',';
    os << h.buckets[b];
  }
  os << ']';
  json::write_field_key(os, "count");
  os << h.count;
  json::write_field_key(os, "sum");
  json::write_number(os, h.sum);
  json::write_field_key(os, "sumsq");
  json::write_number(os, h.sum_squares);
  json::write_field_key(os, "max");
  json::write_number(os, h.max);
  os << '}';
}

HistogramSnapshot parse_histogram(const json::Fields& object) {
  HistogramSnapshot h;
  h.bounds = object.numbers("bounds");
  for (std::int64_t b : object.integers("buckets")) {
    h.buckets.push_back(static_cast<std::uint64_t>(b));
  }
  h.count = static_cast<std::uint64_t>(object.integer("count"));
  h.sum = object.number("sum");
  h.sum_squares = object.number("sumsq");
  h.max = object.number("max");
  if (!h.bounds.empty()) {
    check_bounds(h.bounds);
    ROBOADS_CHECK(h.buckets.size() == h.bounds.size() + 1,
                  "histogram bucket count does not match bounds");
  }
  return h;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  check_bounds(bounds_);
  for (Stripe& s : stripes_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::record(double v) {
  const std::size_t bucket = bucket_index(bounds_, v);
  Stripe& s = stripes_[internal::this_thread_stripe()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  internal::atomic_add(s.sum, v);
  internal::atomic_add(s.sum_squares, v * v);
  internal::atomic_max(max_, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Stripe& s : stripes_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum_squares() const {
  double total = 0.0;
  for (const Stripe& s : stripes_) {
    total += s.sum_squares.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot h;
  h.bounds = bounds_;
  h.buckets = bucket_counts();
  h.count = count();
  h.sum = sum();
  h.sum_squares = sum_squares();
  h.max = max();
  return h;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Stripe& s : stripes_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::quantile(double q) const {
  return bucket_quantile(bounds_, bucket_counts(), max(), q);
}

const std::vector<double>& default_latency_bounds_ns() {
  static const std::vector<double> bounds = {
      250.0, 500.0, 1e3,   2.5e3, 5e3,   1e4,   2.5e4, 5e4,   1e5,
      2.5e5, 5e5,   1e6,   2.5e6, 5e6,   1e7,   2.5e7, 5e7,   1e8,
      2.5e8, 1e9};
  return bounds;
}

const std::vector<double>& default_delay_bounds_s() {
  static const std::vector<double> bounds = {
      0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
      600.0};
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.value = static_cast<double>(h->count());
    s.sum = h->sum();
    s.mean = h->mean();
    s.p50 = h->quantile(0.50);
    s.p90 = h->quantile(0.90);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    s.max = h->max();
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const MetricSample& s : snapshot()) {
    os << "{\"metric\":";
    json::write_escaped(os, s.name);
    os << ",\"kind\":\"";
    switch (s.kind) {
      case MetricSample::Kind::kCounter: os << "counter"; break;
      case MetricSample::Kind::kGauge: os << "gauge"; break;
      case MetricSample::Kind::kHistogram: os << "histogram"; break;
    }
    os << "\",\"value\":";
    json::write_number(os, s.value);
    if (s.kind == MetricSample::Kind::kHistogram) {
      os << ",\"sum\":";
      json::write_number(os, s.sum);
      os << ",\"mean\":";
      json::write_number(os, s.mean);
      os << ",\"p50\":";
      json::write_number(os, s.p50);
      os << ",\"p90\":";
      json::write_number(os, s.p90);
      os << ",\"p95\":";
      json::write_number(os, s.p95);
      os << ",\"p99\":";
      json::write_number(os, s.p99);
      os << ",\"max\":";
      json::write_number(os, s.max);
      os << ",\"buckets\":[";
      for (std::size_t b = 0; b < s.buckets.size(); ++b) {
        if (b > 0) os << ',';
        os << s.buckets[b];
      }
      os << ']';
    }
    os << "}\n";
  }
}

}  // namespace roboads::obs
