// Hot-path timing primitives for the NUISE/engine/mission instrumentation.
//
// Both timers are null-tolerant: constructed against a nullptr histogram
// they never read the clock, so the disabled path costs one branch — the
// overhead budget `bench/obs_overhead.cc` holds the library to.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace roboads::obs {

inline std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// RAII scope timer: records the enclosing scope's wall time (ns) into the
// histogram on destruction. Nests freely — each instance owns its own start
// stamp, so an inner timer never perturbs an outer one beyond its own cost.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : histogram_(h), start_ns_(h != nullptr ? monotonic_ns() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->record(static_cast<double>(monotonic_ns() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::int64_t start_ns_;
};

// Sequential stage timer for straight-line code (the NUISE estimation
// pipeline): one clock read per stage boundary instead of per-stage RAII
// scopes, and no block restructuring at the call site.
//
//   SplitTimer split(enabled);
//   ... stage 1 ...
//   split.lap(h_stage1);
//   ... stage 2 ...
//   split.lap(h_stage2);
//
// Disabled, every call is a single predictable branch.
class SplitTimer {
 public:
  explicit SplitTimer(bool enabled)
      : enabled_(enabled), last_ns_(enabled ? monotonic_ns() : 0) {}

  // Records the time since construction or the previous lap into `h`
  // (null-safe) and restarts the stage clock.
  void lap(Histogram* h) {
    if (!enabled_) return;
    const std::int64_t now = monotonic_ns();
    if (h != nullptr) h->record(static_cast<double>(now - last_ns_));
    last_ns_ = now;
  }

 private:
  bool enabled_;
  std::int64_t last_ns_;
};

}  // namespace roboads::obs
