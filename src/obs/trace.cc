#include "obs/trace.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "common/check.h"
#include "obs/json.h"

namespace roboads::obs {
namespace {

void write_value(std::ostream& os, const TraceValue& value) {
  if (const auto* d = std::get_if<double>(&value)) {
    json::write_number(os, *d);
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    os << *i;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    os << (*b ? "true" : "false");
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    json::write_escaped(os, *s);
  } else {
    const auto& vec = std::get<std::vector<double>>(value);
    os << '[';
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (i > 0) os << ',';
      json::write_number(os, vec[i]);
    }
    os << ']';
  }
}

// CSV rendering of one scalar; vectors are expanded by the caller.
void write_csv_scalar(std::ostream& os, const TraceValue& value) {
  if (const auto* d = std::get_if<double>(&value)) {
    if (std::isfinite(*d)) {
      os << *d;
    } else {
      os << (std::isnan(*d) ? "nan" : (*d > 0 ? "inf" : "-inf"));
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    os << *i;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    os << (*b ? 1 : 0);
  } else if (const auto* s = std::get_if<std::string>(&value)) {
    os << *s;  // labels are identifier-like; commas are the caller's bug
  }
}

}  // namespace

TraceEvent& TraceEvent::add(std::string name, TraceValue value) {
  fields.emplace_back(std::move(name), std::move(value));
  return *this;
}

void TraceSink::emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceSink::write_jsonl(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  os << "{\"event\":\"schema\",\"name\":\"roboads-detector-trace\","
        "\"version\":"
     << kSchemaVersion << ",\"events\":" << events.size() << "}\n";
  for (const TraceEvent& ev : events) {
    os << "{\"event\":";
    json::write_escaped(os, ev.type);
    if (!ev.label.empty()) {
      os << ",\"label\":";
      json::write_escaped(os, ev.label);
    }
    os << ",\"k\":" << ev.k;
    for (const auto& [name, value] : ev.fields) {
      os << ',';
      json::write_escaped(os, name);
      os << ':';
      write_value(os, value);
    }
    os << "}\n";
  }
}

void TraceSink::write_csv(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  const TraceEvent* first = nullptr;
  for (const TraceEvent& ev : events) {
    if (ev.type == "iteration") {
      first = &ev;
      break;
    }
  }
  if (first == nullptr) return;  // nothing tabular to write

  // Header from the first iteration event; vector fields expand by their
  // length there, which is fixed for a given detector configuration.
  os << "k";
  for (const auto& [name, value] : first->fields) {
    if (const auto* vec = std::get_if<std::vector<double>>(&value)) {
      for (std::size_t i = 0; i < vec->size(); ++i) {
        os << ',' << name << '_' << i;
      }
    } else {
      os << ',' << name;
    }
  }
  os << '\n';

  for (const TraceEvent& ev : events) {
    if (ev.type != "iteration") continue;
    ROBOADS_CHECK_EQ(ev.fields.size(), first->fields.size(),
                     "iteration events must share one field layout");
    os << ev.k;
    for (std::size_t f = 0; f < ev.fields.size(); ++f) {
      ROBOADS_CHECK(ev.fields[f].first == first->fields[f].first,
                    "iteration events must share one field layout");
      const TraceValue& value = ev.fields[f].second;
      if (const auto* vec = std::get_if<std::vector<double>>(&value)) {
        for (double v : *vec) {
          os << ',';
          write_csv_scalar(os, v);
        }
      } else {
        os << ',';
        write_csv_scalar(os, value);
      }
    }
    os << '\n';
  }
}

// --- JSONL structural validation. ---
namespace {

// Minimal recursive-descent checker for one JSON value. Accepts the full
// JSON grammar (the sink only emits flat objects, but the validator being
// stricter than the writer would turn writer extensions into CI breakage).
struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  bool done() const { return i >= s.size(); }
  char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
  void expect(char c, const char* what) {
    ROBOADS_CHECK(!done() && s[i] == c, std::string("expected ") + what);
    ++i;
  }

  void value() {
    skip_ws();
    ROBOADS_CHECK(!done(), "truncated JSON value");
    const char c = peek();
    if (c == '{') {
      object();
    } else if (c == '[') {
      array();
    } else if (c == '"') {
      string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      number();
    }
  }

  void object() {
    expect('{', "'{'");
    skip_ws();
    if (!done() && peek() == '}') {
      ++i;
      return;
    }
    while (true) {
      skip_ws();
      string();
      skip_ws();
      expect(':', "':'");
      value();
      skip_ws();
      if (!done() && peek() == ',') {
        ++i;
        continue;
      }
      expect('}', "'}'");
      return;
    }
  }

  void array() {
    expect('[', "'['");
    skip_ws();
    if (!done() && peek() == ']') {
      ++i;
      return;
    }
    while (true) {
      value();
      skip_ws();
      if (!done() && peek() == ',') {
        ++i;
        continue;
      }
      expect(']', "']'");
      return;
    }
  }

  void string() {
    expect('"', "'\"'");
    while (true) {
      ROBOADS_CHECK(!done(), "unterminated JSON string");
      const char c = s[i++];
      if (c == '"') return;
      if (c == '\\') {
        ROBOADS_CHECK(!done(), "truncated escape sequence");
        ++i;
      }
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      ROBOADS_CHECK(!done() && s[i] == *p, "malformed JSON literal");
      ++i;
    }
  }

  void number() {
    const std::size_t start = i;
    if (!done() && (peek() == '-' || peek() == '+')) ++i;
    bool digits = false;
    auto eat_digits = [&] {
      while (!done() && peek() >= '0' && peek() <= '9') {
        ++i;
        digits = true;
      }
    };
    eat_digits();
    if (!done() && peek() == '.') {
      ++i;
      eat_digits();
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++i;
      if (!done() && (peek() == '-' || peek() == '+')) ++i;
      eat_digits();
    }
    ROBOADS_CHECK(digits && i > start, "malformed JSON number");
  }
};

}  // namespace

std::size_t validate_jsonl(std::istream& is) {
  std::string line;
  std::size_t n = 0;
  while (std::getline(is, line)) {
    ++n;
    if (line.empty()) continue;
    try {
      JsonCursor cur{line};
      cur.skip_ws();
      ROBOADS_CHECK(!cur.done() && cur.peek() == '{',
                    "JSONL line must be an object");
      cur.object();
      cur.skip_ws();
      ROBOADS_CHECK(cur.done(), "trailing content after JSON object");
    } catch (const CheckError& e) {
      throw CheckError("JSONL line " + std::to_string(n) + ": " + e.what());
    }
  }
  return n;
}

}  // namespace roboads::obs
