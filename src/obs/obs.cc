#include "obs/obs.h"

#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/report.h"

namespace roboads::obs {
namespace {

template <typename WriteFn>
void write_file(const std::string& path, const char* what, WriteFn&& write) {
  std::ofstream file(path);
  ROBOADS_CHECK(file.good(),
                std::string("cannot open ") + what + " file '" + path + "'");
  write(file);
  file.flush();
  ROBOADS_CHECK(!file.fail(),
                std::string("error writing ") + what + " file '" + path + "'");
}

}  // namespace

Observability::Observability(ObsConfig config) : config_(std::move(config)) {
  if (config_.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (config_.trace) trace_ = std::make_unique<TraceSink>();
  if (config_.record) {
    FlightRecorderConfig recorder_config;
    recorder_config.enabled = true;
    recorder_config.window = config_.record_window;
    recorder_ = std::make_unique<FlightRecorder>(recorder_config);
  }
}

Instruments Observability::instruments() {
  return Instruments{metrics_.get(), trace_.get(), recorder_.get()};
}

MetricsRegistry& Observability::metrics() {
  ROBOADS_CHECK(metrics_ != nullptr, "metrics collection is disabled");
  return *metrics_;
}

TraceSink& Observability::trace() {
  ROBOADS_CHECK(trace_ != nullptr, "trace collection is disabled");
  return *trace_;
}

FlightRecorder& Observability::recorder() {
  ROBOADS_CHECK(recorder_ != nullptr, "flight recorder is disabled");
  return *recorder_;
}

void Observability::finish() {
  if (finished_) return;
  finished_ = true;
  if (trace_ != nullptr && !config_.trace_jsonl_path.empty()) {
    write_file(config_.trace_jsonl_path, "trace JSONL",
               [&](std::ostream& os) { trace_->write_jsonl(os); });
  }
  if (trace_ != nullptr && !config_.trace_csv_path.empty()) {
    write_file(config_.trace_csv_path, "trace CSV",
               [&](std::ostream& os) { trace_->write_csv(os); });
  }
  if (metrics_ != nullptr && !config_.metrics_jsonl_path.empty()) {
    write_file(config_.metrics_jsonl_path, "metrics JSONL",
               [&](std::ostream& os) { metrics_->write_jsonl(os); });
  }
  if (recorder_ != nullptr && !config_.record_out.empty()) {
    const std::vector<PostmortemBundle>& bundles = recorder_->bundles();
    for (std::size_t i = 0; i < bundles.size(); ++i) {
      const std::string path =
          config_.record_out + bundle_filename(bundles[i], i);
      write_bundle_file(path, bundles[i]);
      bundle_paths_.push_back(path);
    }
  }
}

std::string Observability::report() const {
  std::ostringstream os;
  if (metrics_ != nullptr) {
    os << render_report(*metrics_);
  } else {
    os << "== roboads_report: metrics collection disabled ==\n";
  }
  if (trace_ != nullptr) {
    os << "trace: " << trace_->size() << " events buffered\n";
  }
  if (recorder_ != nullptr) {
    os << "recorder: " << recorder_->size() << "/"
       << recorder_->config().window << " records held, "
       << recorder_->bundles().size() << " bundle(s) captured";
    if (recorder_->bundles_dropped() > 0) {
      os << " (" << recorder_->bundles_dropped() << " dropped)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace roboads::obs
