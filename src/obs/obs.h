// Detector observability layer — configuration and the owning runtime
// bundle (docs/OBSERVABILITY.md).
//
// Split in two so the hot path never sees ownership:
//
//   * ObsConfig — the user-facing knobs. Off by default; a default config
//     produces null Instruments and the instrumented code compiles down to
//     pointer-null branches, leaving golden traces bit-identical.
//   * Instruments — the non-owning handle bundle (metrics registry + trace
//     sink pointers) threaded through EngineConfig / MissionConfig /
//     WorkflowConfig. Copyable, cheap, null-safe.
//   * Observability — the owner. Construct one per run (mission, bench,
//     sweep), hand its instruments() to the configs, and call finish() at
//     the end to write the configured JSONL/CSV artifacts. report() renders
//     the roboads_report summary at any point.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace roboads::obs {

struct ObsConfig {
  // Collect counters/gauges/latency histograms (the metrics registry).
  bool metrics = false;
  // Collect the structured per-iteration trace (the trace sink).
  bool trace = false;

  // Output paths written by Observability::finish(); empty = keep the data
  // in memory only (still queryable via metrics()/trace()).
  std::string trace_jsonl_path;
  std::string trace_csv_path;
  std::string metrics_jsonl_path;

  // Run the black-box flight recorder (obs/flight_recorder.h): a fixed-
  // capacity ring of the last `record_window` detector iterations, frozen
  // into postmortem bundles on alarms/quarantines/mission failures.
  bool record = false;
  std::size_t record_window = 256;
  // Bundle filename prefix (may include a directory part) used by
  // finish(); empty = keep captured bundles in memory only.
  std::string record_out;

  bool enabled() const { return metrics || trace || record; }
};

// Non-owning instrumentation handles. Null members disable that aspect;
// value-default is fully disabled. Every instrumented component treats this
// as optional — no component ever requires observation to run.
//
// The recorder handle is *per-mission* state (a single ring timeline):
// sequential missions may share one, concurrent missions must not — batch
// runners construct one recorder per job (eval/batch.cc) and drop any
// inherited shared handle.
struct Instruments {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  FlightRecorder* recorder = nullptr;

  // Coarse-timer tier for always-on telemetry (the sharded campaign
  // workers): keep the whole-step timers (engine.step_ns,
  // decision.evaluate_ns) and every counter/gauge, but skip resolving the
  // five per-stage NUISE timers, whose 10 extra clock reads per step
  // dominate the metrics tier's cost (docs/OBSERVABILITY.md overhead
  // table). Ignored when `metrics` is null.
  bool coarse_timers = false;

  bool enabled() const {
    return metrics != nullptr || trace != nullptr || recorder != nullptr;
  }
};

class Observability {
 public:
  explicit Observability(ObsConfig config);

  const ObsConfig& config() const { return config_; }

  // Null members exactly where the config disabled collection.
  Instruments instruments();

  // Valid only for the aspects the config enabled.
  MetricsRegistry& metrics();
  TraceSink& trace();
  FlightRecorder& recorder();

  // Writes the configured output artifacts (idempotent; flush + failbit
  // checked, throws CheckError on I/O failure). Captured postmortem bundles
  // are written one file each under the `record_out` prefix; the paths are
  // available from bundle_paths() afterwards.
  void finish();
  const std::vector<std::string>& bundle_paths() const {
    return bundle_paths_;
  }

  // roboads_report text: the metrics summary plus one-line trace/recorder
  // tallies.
  std::string report() const;

 private:
  ObsConfig config_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceSink> trace_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::vector<std::string> bundle_paths_;
  bool finished_ = false;
};

}  // namespace roboads::obs
