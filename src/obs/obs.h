// Detector observability layer — configuration and the owning runtime
// bundle (docs/OBSERVABILITY.md).
//
// Split in two so the hot path never sees ownership:
//
//   * ObsConfig — the user-facing knobs. Off by default; a default config
//     produces null Instruments and the instrumented code compiles down to
//     pointer-null branches, leaving golden traces bit-identical.
//   * Instruments — the non-owning handle bundle (metrics registry + trace
//     sink pointers) threaded through EngineConfig / MissionConfig /
//     WorkflowConfig. Copyable, cheap, null-safe.
//   * Observability — the owner. Construct one per run (mission, bench,
//     sweep), hand its instruments() to the configs, and call finish() at
//     the end to write the configured JSONL/CSV artifacts. report() renders
//     the roboads_report summary at any point.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace roboads::obs {

struct ObsConfig {
  // Collect counters/gauges/latency histograms (the metrics registry).
  bool metrics = false;
  // Collect the structured per-iteration trace (the trace sink).
  bool trace = false;

  // Output paths written by Observability::finish(); empty = keep the data
  // in memory only (still queryable via metrics()/trace()).
  std::string trace_jsonl_path;
  std::string trace_csv_path;
  std::string metrics_jsonl_path;

  bool enabled() const { return metrics || trace; }
};

// Non-owning instrumentation handles. Null members disable that aspect;
// value-default is fully disabled. Every instrumented component treats this
// as optional — no component ever requires observation to run.
struct Instruments {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;

  bool enabled() const { return metrics != nullptr || trace != nullptr; }
};

class Observability {
 public:
  explicit Observability(ObsConfig config);

  const ObsConfig& config() const { return config_; }

  // Null members exactly where the config disabled collection.
  Instruments instruments();

  // Valid only for the aspects the config enabled.
  MetricsRegistry& metrics();
  TraceSink& trace();

  // Writes the configured output artifacts (idempotent; flush + failbit
  // checked, throws CheckError on I/O failure).
  void finish();

  // roboads_report text: the metrics summary plus a one-line trace tally.
  std::string report() const;

 private:
  ObsConfig config_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceSink> trace_;
  bool finished_ = false;
};

}  // namespace roboads::obs
