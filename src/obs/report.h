// End-of-run summary (`roboads_report`): renders a metrics registry as a
// human-readable block — top timers by total time, the mode-selection
// histogram, and fault/quarantine/alarm counters — printable from any
// mission, bench, or batch sweep (docs/OBSERVABILITY.md).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace roboads::obs {

// Formats the registry's current state. Stable section order: timers
// (histograms, sorted by total recorded time), mode-selection counters
// (names starting with "engine.mode_selected."), remaining counters,
// gauges. Returns a non-empty string even for an empty registry so callers
// can print unconditionally.
std::string render_report(const MetricsRegistry& registry);

// Same rendering over an already-materialized snapshot — the offline path:
// `roboads_report <metrics.jsonl>` loads a file written by
// MetricsRegistry::write_jsonl and re-renders it.
std::string render_report(const std::vector<MetricSample>& samples);

// Loads a metrics JSONL file back into samples. Loud on anything that
// would otherwise render as a silently empty report: throws CheckError if
// the file is missing, empty, truncated mid-line (no final newline), or
// holds an unparseable/alien line (diagnostics carry the line number).
std::vector<MetricSample> load_metrics_jsonl(const std::string& path);

// A labelled exact histogram snapshot — the fleet tools' second offline
// format: one {"name":"...","histogram":{...}} object per line, where the
// embedded object is write_histogram's (so merged fleet distributions
// round-trip bit-exactly through the file).
struct NamedHistogram {
  std::string name;
  HistogramSnapshot histogram;
};

// Writes one named-histogram JSONL line (no trailing newline).
void write_named_histogram(std::ostream& os, const std::string& name,
                           const HistogramSnapshot& histogram);

// Loads a histogram-snapshot JSONL file: named lines as written above, or
// bare write_histogram objects (named "histogram[N]" by position). Same
// loud-failure contract as load_metrics_jsonl.
std::vector<NamedHistogram> load_histograms_jsonl(const std::string& path);

// Renders histogram snapshots as a table (n, mean, p50, p99, max, ±ci95);
// names ending in "_ns" format as human durations.
std::string render_histograms(const std::vector<NamedHistogram>& histograms);

// The `roboads_report <file>` entry: sniffs the first line to decide
// between a metrics registry dump ("metric" key) and histogram-snapshot
// JSONL ("histogram"/"bounds" key), then renders accordingly. Loud on
// missing/empty/truncated files either way.
std::string render_report_file(const std::string& path);

// "17.40us"-style human duration for a nanosecond quantity; shared by the
// report and the live `roboads_shard watch` status renderer.
std::string format_duration_ns(double ns);

}  // namespace roboads::obs
