// End-of-run summary (`roboads_report`): renders a metrics registry as a
// human-readable block — top timers by total time, the mode-selection
// histogram, and fault/quarantine/alarm counters — printable from any
// mission, bench, or batch sweep (docs/OBSERVABILITY.md).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace roboads::obs {

// Formats the registry's current state. Stable section order: timers
// (histograms, sorted by total recorded time), mode-selection counters
// (names starting with "engine.mode_selected."), remaining counters,
// gauges. Returns a non-empty string even for an empty registry so callers
// can print unconditionally.
std::string render_report(const MetricsRegistry& registry);

}  // namespace roboads::obs
