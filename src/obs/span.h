// Causal packet-to-alarm spans for the fleet introspection plane
// (docs/OBSERVABILITY.md "Fleet introspection").
//
// A span decomposes one detector step's critical path into the stages a
// packet crosses on its way to an alarm:
//
//   ingest → ring → reassembly → step → decision/alarm publication
//
// The hot path only *stamps*: SpanStamps is a fixed-size block of steady-
// clock nanoseconds carried inside the session's pending-frame slot, so a
// traced robot pays a handful of clock reads per packet and never
// allocates. One TraceEvent materializes per sampled frame at step time
// (make_span_event), emitted through the same pinned-schema JSONL sink the
// per-iteration trace uses (obs/trace.h) — spans and iteration events share
// one file format, one validator, one schema-version discipline.
//
// Sampling is per *robot* (FleetIntrospectConfig::trace_sample = N traces
// every N-th robot): a traced robot's spans form a complete, causally
// ordered story, which a per-packet coin flip would not.
#pragma once

#include <cstdint>

#include "obs/trace.h"

namespace roboads::obs {

// Bumped whenever the span event's field set changes; emitted in every
// span event so offline consumers can gate on it.
inline constexpr int kSpanSchemaVersion = 1;

// Steady-clock stamps accumulated while a frame assembles. All stamps share
// fleet::steady_now_ns()'s clock, so stage durations are same-clock
// differences. Zero = the stage was never reached (e.g. a dark frame
// force-evicted before any packet arrived).
struct SpanStamps {
  std::uint64_t first_ingest_ns = 0;   // first packet submitted
  std::uint64_t last_ingest_ns = 0;    // last packet submitted
  std::uint64_t first_dequeue_ns = 0;  // first packet popped off the ring
  std::uint64_t last_dequeue_ns = 0;   // last packet popped (frame complete)
  std::uint64_t step_start_ns = 0;     // detector step entered
  std::uint64_t step_end_ns = 0;       // detector step returned
  std::uint64_t publish_ns = 0;        // decision/alarm published to sinks
  std::uint32_t packets = 0;           // packets folded into the frame

  // Folds one packet's ingest/dequeue stamps in (0 stamps are skipped).
  void note_packet(std::uint64_t ingest_ns, std::uint64_t dequeue_ns);

  void reset() { *this = SpanStamps{}; }
};

// Step outcome flags carried on the span event.
struct SpanOutcome {
  bool sensor_alarm = false;
  bool actuator_alarm = false;
  bool masked = false;  // stepped with >= 1 sensor unavailable
  bool forced = false;  // force-evicted from the reorder window
};

// Builds the pinned-schema "span" trace event. Field order is fixed (the
// golden-schema discipline of obs/trace.h): robot, span_version, packets,
// ingest_ns, ring_ns, reassembly_ns, step_wait_ns, step_ns, publish_ns,
// total_ns, masked, forced, sensor_alarm, actuator_alarm. Durations are
// saturating differences of the stage stamps (never negative; 0 when a
// stage was skipped).
TraceEvent make_span_event(std::uint64_t robot, std::uint64_t k,
                           const SpanStamps& stamps,
                           const SpanOutcome& outcome);

}  // namespace roboads::obs
