#include "bus/baseline_detectors.h"

#include <algorithm>
#include <cmath>

namespace roboads::bus {

std::vector<BaselineAlarm> TimingMonitor::analyze(const BusLog& log) const {
  std::vector<BaselineAlarm> alarms;
  double log_end = 0.0;
  for (const Packet& p : log.packets()) {
    log_end = std::max(log_end, p.arrival_time);
  }
  for (const std::string& source : log.sources()) {
    const std::vector<Packet> packets = log.from(source);
    const double lo =
        config_.nominal_period * (1.0 - config_.jitter_tolerance);
    const double hi =
        config_.nominal_period * (1.0 + config_.jitter_tolerance);
    for (std::size_t i = 1; i < packets.size(); ++i) {
      const double gap =
          packets[i].arrival_time - packets[i - 1].arrival_time;
      if (gap < lo) {
        alarms.push_back({source, packets[i].iteration,
                          "inter-arrival gap too short (injected packet?)"});
      } else if (gap > hi) {
        alarms.push_back({source, packets[i].iteration,
                          "inter-arrival gap too long (missing packet?)"});
      }
    }
    // Silence detection: a source that stops transmitting produces no more
    // gaps at all — raise one alarm per missed period until the log ends.
    const double last = packets.back().arrival_time;
    for (double t = last + hi; t < log_end;
         t += config_.nominal_period) {
      alarms.push_back({source, packets.back().iteration,
                        "source silent past its deadline"});
    }
  }
  return alarms;
}

void FingerprintMonitor::enroll(const std::string& source,
                                std::uint64_t hardware_id) {
  ROBOADS_CHECK(!source.empty(), "cannot enroll an unnamed source");
  enrolled_[source] = hardware_id;
}

std::vector<BaselineAlarm> FingerprintMonitor::analyze(
    const BusLog& log) const {
  std::vector<BaselineAlarm> alarms;
  for (const Packet& p : log.packets()) {
    const auto it = enrolled_.find(p.source);
    if (it == enrolled_.end()) {
      alarms.push_back({p.source, p.iteration, "unenrolled transmitter"});
    } else if (it->second != p.hardware_id) {
      alarms.push_back(
          {p.source, p.iteration, "fingerprint mismatch (impersonation?)"});
    }
  }
  return alarms;
}

void ContentEnvelopeMonitor::train(const BusLog& clean_log) {
  envelopes_.clear();
  for (const std::string& source : clean_log.sources()) {
    const std::vector<Packet> packets = clean_log.from(source);
    if (packets.empty()) continue;
    const std::size_t dim = packets.front().payload.size();
    Envelope env;
    env.min_value = packets.front().payload;
    env.max_value = packets.front().payload;
    env.max_abs_delta = Vector(dim);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      ROBOADS_CHECK_EQ(packets[i].payload.size(), dim,
                       "inconsistent payload size in training log");
      for (std::size_t j = 0; j < dim; ++j) {
        env.min_value[j] = std::min(env.min_value[j], packets[i].payload[j]);
        env.max_value[j] = std::max(env.max_value[j], packets[i].payload[j]);
        if (i > 0) {
          env.max_abs_delta[j] =
              std::max(env.max_abs_delta[j],
                       std::abs(packets[i].payload[j] -
                                packets[i - 1].payload[j]));
        }
      }
    }
    envelopes_[source] = std::move(env);
  }
}

std::vector<BaselineAlarm> ContentEnvelopeMonitor::analyze(
    const BusLog& log) const {
  ROBOADS_CHECK(trained(), "content monitor must be trained first");
  std::vector<BaselineAlarm> alarms;
  for (const std::string& source : log.sources()) {
    const auto it = envelopes_.find(source);
    if (it == envelopes_.end()) continue;  // never trained on this source
    const Envelope& env = it->second;
    const std::vector<Packet> packets = log.from(source);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const Vector& v = packets[i].payload;
      if (v.size() != env.min_value.size()) continue;
      for (std::size_t j = 0; j < v.size(); ++j) {
        const double span = env.max_value[j] - env.min_value[j];
        const double slack = (config_.margin - 1.0) * std::max(span, 1e-6);
        if (v[j] < env.min_value[j] - slack ||
            v[j] > env.max_value[j] + slack) {
          alarms.push_back({source, packets[i].iteration,
                            "value outside learned range"});
          break;
        }
        if (i > 0) {
          const double delta =
              std::abs(v[j] - packets[i - 1].payload[j]);
          if (delta > config_.margin * std::max(env.max_abs_delta[j], 1e-6)) {
            alarms.push_back({source, packets[i].iteration,
                              "rate of change outside learned envelope"});
            break;
          }
        }
      }
    }
  }
  return alarms;
}

std::set<std::string> implicated_sources(
    const std::vector<BaselineAlarm>& alarms) {
  std::set<std::string> out;
  for (const BaselineAlarm& a : alarms) out.insert(a.source);
  return out;
}

}  // namespace roboads::bus
