// The three related-work detector classes of paper §II-C, implemented as
// working baselines so their blind spots can be measured instead of argued:
//
//   * time-based      — "monitor and validate the timeliness of
//                        communication packets" (Miller & Valasek; Taylor;
//                        Song et al.): catches aperiodic injection and
//                        missing packets, "could be defeated by experienced
//                        attackers who have knowledge about the
//                        periodicity of their targets";
//   * fingerprint-based — transmitter profiling (Cho & Shin's clock-skew /
//                        voltage fingerprinting): catches impersonation by
//                        foreign hardware, fails "if a sensing workflow
//                        itself is malicious or faulty";
//   * learning-based  — statistical norm models over packet contents
//                        (Taylor's LSTM, Ganesan et al.): no dynamic model,
//                        so subtle, physically-plausible corruptions pass.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "bus/packet.h"

namespace roboads::bus {

struct BaselineAlarm {
  std::string source;       // implicated workflow
  std::size_t iteration = 0;
  std::string reason;
};

// --- Time-based: per-source packet periodicity. ---
class TimingMonitor {
 public:
  struct Config {
    double nominal_period = 0.1;   // [s]
    double jitter_tolerance = 0.3; // fraction of the period
  };

  TimingMonitor() = default;
  explicit TimingMonitor(Config config) : config_(config) {}

  // Flags inter-arrival gaps that are too long (missing packets) or too
  // short (injected extra packets) per source.
  std::vector<BaselineAlarm> analyze(const BusLog& log) const;

 private:
  Config config_;
};

// --- Fingerprint-based: per-source transmitter identity. ---
class FingerprintMonitor {
 public:
  // Registers the genuine hardware id of each workflow (learned in a
  // trusted enrollment phase, as ECU fingerprinting schemes do).
  void enroll(const std::string& source, std::uint64_t hardware_id);

  // Flags packets whose fingerprint does not match the enrolled identity.
  std::vector<BaselineAlarm> analyze(const BusLog& log) const;

 private:
  std::map<std::string, std::uint64_t> enrolled_;
};

// --- Learning-based: per-component rate-of-change and range envelopes. ---
class ContentEnvelopeMonitor {
 public:
  struct Config {
    // Envelope slack: flag only when a value exceeds `margin` × the widest
    // excursion seen in training.
    double margin = 1.5;
  };

  ContentEnvelopeMonitor() = default;
  explicit ContentEnvelopeMonitor(Config config) : config_(config) {}

  // Learns per-source envelopes (value range and per-iteration delta range)
  // from a clean traffic log.
  void train(const BusLog& clean_log);
  bool trained() const { return !envelopes_.empty(); }

  std::vector<BaselineAlarm> analyze(const BusLog& log) const;

 private:
  struct Envelope {
    Vector min_value, max_value;
    Vector max_abs_delta;
  };
  Config config_;
  std::map<std::string, Envelope> envelopes_;
};

// Distinct sources implicated by a set of alarms.
std::set<std::string> implicated_sources(
    const std::vector<BaselineAlarm>& alarms);

}  // namespace roboads::bus
