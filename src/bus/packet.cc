#include "bus/packet.h"

#include <algorithm>

namespace roboads::bus {

void BusLog::record(Packet packet) {
  ROBOADS_CHECK(!packet.source.empty(), "packet needs a source");
  // Keep arrival order: insertion point by arrival time (logs are built
  // nearly in order, so this is effectively O(1) amortized).
  auto it = packets_.end();
  while (it != packets_.begin() &&
         std::prev(it)->arrival_time > packet.arrival_time) {
    --it;
  }
  packets_.insert(it, std::move(packet));
}

std::vector<Packet> BusLog::from(const std::string& source) const {
  std::vector<Packet> out;
  for (const Packet& p : packets_) {
    if (p.source == source) out.push_back(p);
  }
  return out;
}

std::vector<std::string> BusLog::sources() const {
  std::vector<std::string> out;
  for (const Packet& p : packets_) {
    if (std::find(out.begin(), out.end(), p.source) == out.end()) {
      out.push_back(p.source);
    }
  }
  return out;
}

}  // namespace roboads::bus
