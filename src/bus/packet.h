// Communication-bus model (paper Fig. 1: "a communication bus connects all
// parts of the robot and enables data transmission relying on protocols
// such as CAN").
//
// Packets carry, beside their payload, the metadata the related-work
// detector classes of §II-C key on: arrival time (time-based approaches),
// a transmitter hardware fingerprint (fingerprint-based approaches, after
// Cho et al.'s clock-skew/voltage ECU profiling), and the source workflow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/matrix.h"

namespace roboads::bus {

enum class PacketKind { kSensorReading, kControlCommand };

struct Packet {
  std::string source;       // workflow name
  PacketKind kind = PacketKind::kSensorReading;
  std::size_t iteration = 0;
  double arrival_time = 0.0;   // [s], includes transmission jitter
  std::uint64_t hardware_id = 0;  // PUF-style transmitter fingerprint
  Vector payload;
};

// A recorded window of bus traffic, ordered by arrival time.
class BusLog {
 public:
  void record(Packet packet);

  const std::vector<Packet>& packets() const { return packets_; }
  // Packets from one source, in arrival order. Returns copies: the log's
  // backing storage reallocates (and shifts, for late arrivals) on the next
  // record(), so handing out pointers into it would dangle the moment the
  // caller keeps recording.
  std::vector<Packet> from(const std::string& source) const;
  // All distinct sources seen.
  std::vector<std::string> sources() const;

 private:
  std::vector<Packet> packets_;
};

}  // namespace roboads::bus
