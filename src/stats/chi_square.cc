#include "stats/chi_square.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace roboads::stats {
namespace {

// Lanczos coefficients (g = 7, n = 9).
constexpr double kLanczos[] = {
    0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
    771.32342877765313,   -176.61502916214059, 12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6,
    1.5056327351493116e-7};

// P(a, x) by its power series; accurate and fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Q(a, x) by Lentz's continued fraction; accurate for x >= a + 1.
double gamma_q_cont_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double log_gamma(double x) {
  ROBOADS_CHECK(x > 0.0, "log_gamma domain");
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos series in its accurate range.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) acc += kLanczos[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(acc);
}

double regularized_gamma_p(double a, double x) {
  ROBOADS_CHECK(a > 0.0 && x >= 0.0, "regularized_gamma_p domain");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cont_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  ROBOADS_CHECK(a > 0.0 && x >= 0.0, "regularized_gamma_q domain");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cont_fraction(a, x);
}

double chi_square_cdf(double x, std::size_t dof) {
  ROBOADS_CHECK(dof > 0, "chi_square_cdf needs dof >= 1");
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(0.5 * static_cast<double>(dof), 0.5 * x);
}

double chi_square_sf(double x, std::size_t dof) {
  ROBOADS_CHECK(dof > 0, "chi_square_sf needs dof >= 1");
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(0.5 * static_cast<double>(dof), 0.5 * x);
}

double chi_square_quantile(double p, std::size_t dof) {
  ROBOADS_CHECK(dof > 0, "chi_square_quantile needs dof >= 1");
  ROBOADS_CHECK(p > 0.0 && p < 1.0, "chi_square_quantile needs p in (0,1)");
  const double k = static_cast<double>(dof);

  // Wilson-Hilferty starting point.
  const double z = [&] {
    // Acklam-style rational approximation of the normal quantile.
    // Sufficient as an initial guess; Newton refines to full precision.
    const double q = p - 0.5;
    if (std::abs(q) <= 0.425) {
      const double r = 0.180625 - q * q;
      return q *
             (((((((2509.0809287301226727 * r + 33430.575583588128105) * r +
                    67265.770927008700853) * r + 45921.953931549871457) * r +
                  13731.693765509461125) * r + 1971.5909503065514427) * r +
                133.14166789178437745) * r + 3.387132872796366608) /
             (((((((5226.495278852545703 * r + 28729.085735721942674) * r +
                    39307.89580009271061) * r + 21213.794301586595867) * r +
                  5394.1960214247511077) * r + 687.1870074920579083) * r +
                42.313330701600911252) * r + 1.0);
    }
    double r = q < 0.0 ? p : 1.0 - p;
    r = std::sqrt(-std::log(r));
    double val;
    if (r <= 5.0) {
      r -= 1.6;
      val = (((((((7.7454501427834140764e-4 * r + 0.0227238449892691845833) *
                      r + 0.24178072517745061177) * r +
                  1.27045825245236838258) * r + 3.64784832476320460504) * r +
               5.7694972214606914055) * r + 4.6303378461565452959) * r +
             1.42343711074968357734);
    } else {
      r -= 5.0;
      val = (((((((2.01033439929228813265e-7 * r +
                   2.71155556874348757815e-5) * r +
                  0.0012426609473880784386) * r + 0.026532189526576123093) *
                 r + 0.29656057182850489123) * r + 1.7848265399172913358) *
               r + 5.4637849111641143699) * r + 6.6579046435011037772);
    }
    return q < 0.0 ? -val : val;
  }();
  const double wh = k * std::pow(1.0 - 2.0 / (9.0 * k) +
                                     z * std::sqrt(2.0 / (9.0 * k)),
                                 3.0);
  double x = std::max(wh, 1e-8);

  // Establish a finite bracket [lo, hi] with F(lo) < p <= F(hi).
  double lo = 0.0;
  double hi = std::max(x, 1.0);
  for (int it = 0; it < 200 && chi_square_cdf(hi, dof) < p; ++it) {
    lo = hi;
    hi *= 2.0;
  }

  // Safeguarded Newton within the bracket (F is monotone increasing).
  x = std::clamp(x, lo + 0.25 * (hi - lo), hi - 0.25 * (hi - lo));
  for (int it = 0; it < 200; ++it) {
    const double f = chi_square_cdf(x, dof) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // χ² pdf at x for the Newton step.
    const double log_pdf = (0.5 * k - 1.0) * std::log(x) - 0.5 * x -
                           0.5 * k * std::log(2.0) - log_gamma(0.5 * k);
    const double pdf = std::exp(log_pdf);
    double next = pdf > 0.0 ? x - f / pdf : x;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - x) <= 1e-13 * std::max(1.0, x)) return next;
    x = next;
  }
  return x;
}

double chi_square_threshold(double alpha, std::size_t dof) {
  ROBOADS_CHECK(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");
  // Degenerate test: a zero-dimensional anomaly vector has statistic
  // identically 0, so 0 is the one threshold that never rejects it. Keeps a
  // fully-degraded decision step (no testable sensors, sim/faults.h) from
  // tripping the dof >= 1 domain check.
  if (dof == 0) return 0.0;
  return chi_square_quantile(1.0 - alpha, dof);
}

}  // namespace roboads::stats
