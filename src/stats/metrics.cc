#include "stats/metrics.h"

#include <algorithm>
#include <cmath>

namespace roboads::stats {

double ConfusionCounts::false_positive_rate() const {
  const std::size_t denom = false_positives + true_negatives;
  return denom ? static_cast<double>(false_positives) / denom : 0.0;
}

double ConfusionCounts::false_negative_rate() const {
  const std::size_t denom = false_negatives + true_positives;
  return denom ? static_cast<double>(false_negatives) / denom : 0.0;
}

double ConfusionCounts::true_positive_rate() const {
  const std::size_t denom = false_negatives + true_positives;
  return denom ? static_cast<double>(true_positives) / denom : 0.0;
}

double ConfusionCounts::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom ? static_cast<double>(true_positives) / denom : 0.0;
}

double ConfusionCounts::f1() const {
  const double p = precision();
  const double r = true_positive_rate();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

ConfusionCounts& ConfusionCounts::operator+=(const ConfusionCounts& rhs) {
  true_positives += rhs.true_positives;
  false_positives += rhs.false_positives;
  true_negatives += rhs.true_negatives;
  false_negatives += rhs.false_negatives;
  return *this;
}

double roc_auc(std::vector<RocPoint> points) {
  points.push_back({0.0, 0.0, 0.0});
  points.push_back({0.0, 1.0, 1.0});
  std::sort(points.begin(), points.end(), [](const RocPoint& a,
                                             const RocPoint& b) {
    if (a.false_positive_rate != b.false_positive_rate)
      return a.false_positive_rate < b.false_positive_rate;
    return a.true_positive_rate < b.true_positive_rate;
  });
  double area = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dx =
        points[i].false_positive_rate - points[i - 1].false_positive_rate;
    area += dx * 0.5 *
            (points[i].true_positive_rate + points[i - 1].true_positive_rate);
  }
  return area;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

MeanCi95 mean_ci95(const std::vector<double>& xs) {
  MeanCi95 ci;
  ci.n = xs.size();
  ci.mean = mean(xs);
  ci.stddev = sample_stddev(xs);
  const double half =
      ci.n >= 2 ? 1.96 * ci.stddev / std::sqrt(static_cast<double>(ci.n))
                : 0.0;
  ci.lo = ci.mean - half;
  ci.hi = ci.mean + half;
  return ci;
}

}  // namespace roboads::stats
