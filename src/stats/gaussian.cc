#include "stats/gaussian.h"

#include <cmath>

#include "matrix/decomp.h"

namespace roboads::stats {

double gaussian_log_pdf(const Vector& x, const Matrix& cov) {
  ROBOADS_CHECK(cov.square() && cov.rows() == x.size(),
                "gaussian_log_pdf shape mismatch");
  Cholesky chol(cov);
  ROBOADS_CHECK(chol.ok(), "gaussian_log_pdf requires SPD covariance");
  const double n = static_cast<double>(x.size());
  const double maha = x.dot(chol.solve(x));
  return -0.5 * (n * std::log(2.0 * M_PI) + chol.log_determinant() + maha);
}

double degenerate_gaussian_log_pdf(const Vector& x, const Matrix& cov) {
  ROBOADS_CHECK(cov.square() && cov.rows() == x.size(),
                "degenerate_gaussian_log_pdf shape mismatch");
  const Matrix sym = cov.symmetrized();
  const std::size_t n = rank(sym);
  if (n == 0) return 0.0;  // zero-covariance: density collapses to a point
  const double maha = quadratic_form(pseudo_inverse(sym), x);
  return -0.5 * (static_cast<double>(n) * std::log(2.0 * M_PI) +
                 log_pseudo_determinant(sym) + maha);
}

double degenerate_gaussian_pdf(const Vector& x, const Matrix& cov) {
  return std::exp(degenerate_gaussian_log_pdf(x, cov));
}

}  // namespace roboads::stats
