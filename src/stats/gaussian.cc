#include "stats/gaussian.h"

#include <cmath>

#include "matrix/decomp.h"

namespace roboads::stats {

double gaussian_log_pdf(const Vector& x, const Matrix& cov) {
  ROBOADS_CHECK(cov.square() && cov.rows() == x.size(),
                "gaussian_log_pdf shape mismatch");
  Cholesky chol(cov);
  ROBOADS_CHECK(chol.ok(), "gaussian_log_pdf requires SPD covariance");
  const double n = static_cast<double>(x.size());
  const double maha = x.dot(chol.solve(x));
  return -0.5 * (n * std::log(2.0 * M_PI) + chol.log_determinant() + maha);
}

double degenerate_gaussian_log_pdf(const Vector& x, const Matrix& cov) {
  ROBOADS_CHECK(cov.square() && cov.rows() == x.size(),
                "degenerate_gaussian_log_pdf shape mismatch");
  // Dim-scaled cutoff: mirrors the SVD-based rank()/pseudo_inverse()
  // convention this function was originally written against.
  return degenerate_gaussian_log_pdf(
      x, SpdEigenFactor(cov, /*rel_tol=*/1e-10, /*dim_scaled=*/true));
}

double degenerate_gaussian_log_pdf(const Vector& x,
                                   const SpdEigenFactor& cov_factor) {
  ROBOADS_CHECK_EQ(cov_factor.dim(), x.size(),
                   "degenerate_gaussian_log_pdf shape mismatch");
  const std::size_t n = cov_factor.rank();
  if (n == 0) return 0.0;  // zero-covariance: density collapses to a point
  const double maha = cov_factor.quadratic_form(x);
  return -0.5 * (static_cast<double>(n) * std::log(2.0 * M_PI) +
                 cov_factor.log_pseudo_determinant() + maha);
}

double degenerate_gaussian_pdf(const Vector& x, const Matrix& cov) {
  return std::exp(degenerate_gaussian_log_pdf(x, cov));
}

}  // namespace roboads::stats
