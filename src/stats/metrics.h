// Binary-classification metrics used by the evaluation harness to reproduce
// the paper's effectiveness numbers (FPR/FNR, precision/recall/F1, ROC).
#pragma once

#include <cstddef>
#include <vector>

namespace roboads::stats {

// Counts of per-iteration detection outcomes, using the paper's §V
// definitions: a true positive is an alarm with the *correct* condition
// identified; an alarm with the wrong condition counts as a false positive.
struct ConfusionCounts {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  std::size_t total() const {
    return true_positives + false_positives + true_negatives +
           false_negatives;
  }

  // FP / (FP + TN); 0 when the denominator is empty.
  double false_positive_rate() const;
  // FN / (FN + TP); 0 when the denominator is empty.
  double false_negative_rate() const;
  double true_positive_rate() const;  // recall
  double precision() const;
  // Harmonic mean of precision and recall (the paper's Fig. 7c/7d metric).
  double f1() const;

  ConfusionCounts& operator+=(const ConfusionCounts& rhs);
};

// A single operating point on a ROC curve.
struct RocPoint {
  double parameter = 0.0;  // the swept parameter (e.g. α)
  double false_positive_rate = 0.0;
  double true_positive_rate = 0.0;
};

// Area under a ROC curve by trapezoidal rule after sorting by FPR and
// anchoring at (0,0) and (1,1).
double roc_auc(std::vector<RocPoint> points);

// Mean / sample standard deviation over a series.
double mean(const std::vector<double>& xs);
double sample_stddev(const std::vector<double>& xs);

// Normal-approximation 95% confidence interval for the mean of a series:
// mean ± 1.96 · s/√n. With n < 2 the half-width is 0 (no spread estimate).
struct MeanCi95 {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double lo = 0.0;
  double hi = 0.0;
};
MeanCi95 mean_ci95(const std::vector<double>& xs);

}  // namespace roboads::stats
