// Chi-square distribution functions for the RoboADS decision maker.
//
// The decision maker (paper §IV-D) tests whether normalized anomaly-vector
// estimates exceed the χ² quantile at confidence level α. We implement the
// regularized incomplete gamma function from scratch (series + continued
// fraction) and build CDF / quantile / hypothesis-test helpers on top.
#pragma once

#include <cstddef>

namespace roboads::stats {

// ln Γ(x) for x > 0 (Lanczos approximation, |relative error| < 1e-13).
double log_gamma(double x);

// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0, x >= 0.
double regularized_gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

// χ² CDF with `dof` degrees of freedom evaluated at x >= 0.
double chi_square_cdf(double x, std::size_t dof);

// Upper-tail probability (p-value) of a χ² statistic.
double chi_square_sf(double x, std::size_t dof);

// Quantile: smallest x with CDF(x) >= p, for p in (0, 1). Solved by a
// Wilson-Hilferty initial guess refined with safeguarded Newton iterations.
double chi_square_quantile(double p, std::size_t dof);

// Detection threshold for a test at confidence level `alpha` (the paper's α):
// the (1 - alpha) quantile. A statistic above this rejects the "no anomaly"
// hypothesis. dof = 0 (a zero-dimensional statistic, possible on a fully
// degraded step) returns 0 instead of tripping the quantile's domain check.
double chi_square_threshold(double alpha, std::size_t dof);

}  // namespace roboads::stats
