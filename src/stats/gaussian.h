// Multivariate Gaussian densities, including the degenerate (rank-deficient)
// case used by the NUISE mode likelihood.
#pragma once

#include "matrix/decomp.h"
#include "matrix/matrix.h"

namespace roboads::stats {

// log N(x; 0, cov) for full-rank symmetric positive-definite `cov`.
double gaussian_log_pdf(const Vector& x, const Matrix& cov);

// Degenerate Gaussian log-density on the support of `cov`:
//   log [ (2π)^(-n/2) |cov|_+^(-1/2) exp(-x^T cov^† x / 2) ]
// with n = rank(cov), |·|_+ the pseudo-determinant and (·)^† the
// pseudo-inverse — exactly the mode likelihood of Algorithm 2, line 20.
double degenerate_gaussian_log_pdf(const Vector& x, const Matrix& cov);

// As above, evaluated on an already-computed factor of `cov`. The NUISE step
// factors its innovation covariance once for the filter gain and reuses the
// same factor here — rank, pseudo-determinant, and the Mahalanobis form all
// come from the one eigendecomposition.
double degenerate_gaussian_log_pdf(const Vector& x,
                                   const SpdEigenFactor& cov_factor);

// Convenience: exp of the above, floored at 0.
double degenerate_gaussian_pdf(const Vector& x, const Matrix& cov);

}  // namespace roboads::stats
