// Fixed-size worker pool for deterministic fork/join parallelism.
//
// The pool exposes exactly one primitive — parallel_for — because every
// concurrent structure in this library reduces to it: the multi-mode engine
// fans one NUISE step per mode (core/engine.cc), and the batched scenario
// runner fans one mission per (scenario, seed) task (sim/workflow.h,
// eval/batch.h). Both write results into pre-allocated, index-addressed
// slots and reduce serially after the join, so outputs are bit-identical
// for any worker count (docs/CONCURRENCY.md).
//
// A pool of size n owns n−1 worker threads; the thread calling parallel_for
// participates as the n-th worker. Size 1 therefore spawns no threads at
// all and parallel_for degenerates to a plain loop on the calling thread —
// the exact legacy serial path, not an emulation of it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace roboads::common {

class ThreadPool {
 public:
  // `size` counts the calling thread: size 1 means fully serial, size n
  // means n-way concurrency (n−1 spawned workers). 0 is invalid — resolve
  // requested counts through resolve_thread_count first.
  explicit ThreadPool(std::size_t size);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  // Executes fn(i) exactly once for every i in [0, count), distributed over
  // the workers plus the calling thread, and blocks until all invocations
  // have finished. Indices are claimed dynamically, so per-index work may
  // run on any thread and in any order — callers must only write to
  // index-owned slots. If any invocation throws, the exception thrown by
  // the lowest failing index is rethrown here after the join (every index
  // still runs; failures never cancel other indices, keeping the set of
  // executed work independent of scheduling).
  //
  // Not reentrant: a pool runs one parallel_for at a time, and fn must not
  // call back into the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // Maps a user-facing thread-count knob to a pool size: 0 selects the
  // hardware concurrency (at least 1), anything else is taken literally.
  static std::size_t resolve_thread_count(std::size_t requested);

 private:
  struct Batch;

  void worker_loop();
  void run_items(Batch& batch);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch or stop
  std::condition_variable done_cv_;  // parallel_for: batch fully retired
  Batch* batch_ = nullptr;           // non-null while a batch is live
  std::uint64_t epoch_ = 0;          // bumped per batch; workers join once
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace roboads::common
