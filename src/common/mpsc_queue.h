// Lock-free bounded multi-producer queue for the fleet ingestion front.
//
// This is the classic Vyukov bounded MPMC ring: each cell carries an atomic
// sequence number that encodes, relative to the head/tail tickets, whether
// the cell is free, full, or in flight. Producers and consumers claim
// tickets with a single CAS each and never spin on a lock, so an ingest
// thread submitting packets can never be blocked by a slow detection shard
// (docs/FLEET.md). Capacity is fixed at construction and rounded up to a
// power of two so the cell index is a mask, not a modulo.
//
// Both ends are thread-safe (MPMC), which the fleet layer exploits for its
// drop-oldest backpressure policy: a producer that finds the ring full pops
// one element itself — counting the drop — and retries the push, so the
// *newest* data always lands and the queue degrades by shedding the oldest
// samples, exactly the semantics a real-time detector wants.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace roboads::common {

template <typename T>
class BoundedMpmcQueue {
 public:
  // `capacity` is rounded up to the next power of two, minimum 2.
  explicit BoundedMpmcQueue(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Attempts to enqueue; returns false when the ring is full. Never blocks.
  bool try_push(T value) { return try_push_ref(value); }

  // Attempts to dequeue into `out`; returns false when empty. Never blocks.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  // Drop-oldest enqueue: always lands `value`, evicting the oldest queued
  // element if the ring is full. Returns the number of elements dropped to
  // make room (0 or more; >1 only under producer races). Never blocks.
  std::size_t push_dropping_oldest(T value) {
    std::size_t dropped = 0;
    // try_push_ref moves from `value` only on success, so the retry after a
    // full ring still holds the original element.
    while (!try_push_ref(value)) {
      T victim;
      if (try_pop(victim)) {
        ++dropped;
      }
      // If try_pop failed another consumer freed a slot already; retry.
    }
    return dropped;
  }

  // Approximate occupancy (racy; for metrics only).
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  // The real enqueue: moves from `value` only once a cell is claimed, so a
  // "full" failure leaves the caller's element intact for a retry.
  bool try_push_ref(T& value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 2;
    while (p < v) p <<= 1;
    return p;
  }

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer ticket
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer ticket
};

}  // namespace roboads::common
