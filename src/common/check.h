// Lightweight precondition / invariant checking used across the library.
//
// ROBOADS_CHECK(cond, msg) throws roboads::CheckError when `cond` is false.
// These guard API misuse (dimension mismatches, invalid parameters) and are
// kept on in release builds: the cost is negligible next to the matrix math
// they protect, and a hard failure beats silently corrupted estimates in a
// detection system.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace roboads {

// Thrown on violated preconditions/invariants anywhere in the library.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ROBOADS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace internal
}  // namespace roboads

#define ROBOADS_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::roboads::internal::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

#define ROBOADS_CHECK_EQ(a, b, msg)                                  \
  do {                                                               \
    if (!((a) == (b))) {                                             \
      std::ostringstream os_;                                        \
      os_ << (msg) << " [" << (a) << " != " << (b) << "]";           \
      ::roboads::internal::check_failed(#a " == " #b, __FILE__,      \
                                        __LINE__, os_.str());        \
    }                                                                \
  } while (false)
