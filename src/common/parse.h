// Strict numeric parsing for CLI flags and serialized fields.
//
// Every surface that accepts a number — bench flags, shard worker argv,
// merged-report group names — must reject malformed input with a diagnostic
// instead of crashing (raw std::stoi/std::stoul throw std::invalid_argument
// straight through argv loops) or silently misreading it (atoi-style prefix
// parses). These helpers parse the *entire* string or return nullopt:
// no leading whitespace, no trailing junk, no empty input, and for the
// unsigned forms no "-0"-style negative sneaking through strtoul's wraparound.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <string>

namespace roboads::common {

// Whole-string unsigned integer. Rejects empty input, signs, whitespace,
// trailing junk, and out-of-range values.
inline std::optional<unsigned long long> parse_u64(const std::string& text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

// Whole-string signed integer. Allows one leading '-'; otherwise as strict
// as parse_u64.
inline std::optional<long long> parse_i64(const std::string& text) {
  const bool negative = !text.empty() && text[0] == '-';
  const std::size_t digits_at = negative ? 1 : 0;
  if (text.size() <= digits_at ||
      !std::isdigit(static_cast<unsigned char>(text[digits_at]))) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

// Whole-string finite double. Accepts the usual strtod forms ("0.5", "1e-3",
// "-2.") but rejects empty input, trailing junk, leading whitespace, and
// inf/nan spellings (a telemetry interval of "nan" is never intentional).
inline std::optional<double> parse_double(const std::string& text) {
  if (text.empty() ||
      std::isspace(static_cast<unsigned char>(text[0]))) {
    return std::nullopt;
  }
  const char first = text[0] == '-' || text[0] == '+'
                         ? (text.size() > 1 ? text[1] : '\0')
                         : text[0];
  if (!std::isdigit(static_cast<unsigned char>(first)) && first != '.') {
    return std::nullopt;  // rejects "inf", "nan", "x1"
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

}  // namespace roboads::common
