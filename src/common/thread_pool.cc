#include "common/thread_pool.h"

#include <atomic>
#include <limits>

#include "common/check.h"

namespace roboads::common {

// One fork/join region. `next` hands out indices; everything else is
// guarded by the pool mutex. The batch lives on the parallel_for caller's
// stack, so the caller must not return until `active` drops back to zero —
// a late-waking worker may still hold the pointer after the last index
// completed.
struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t completed = 0;  // indices fully executed
  std::size_t active = 0;     // workers currently inside run_items
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t size) {
  ROBOADS_CHECK(size >= 1, "thread pool size must be at least 1");
  workers_.reserve(size - 1);
  for (std::size_t i = 0; i + 1 < size; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && epoch_ != seen);
      });
      if (stop_) return;
      seen = epoch_;
      batch = batch_;
      ++batch->active;
    }
    run_items(*batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --batch->active;
      if (batch->active == 0 && batch->completed == batch->count) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::run_items(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    std::exception_ptr err;
    try {
      (*batch.fn)(i);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (err && i < batch.error_index) {
      batch.error_index = i;
      batch.error = err;
    }
    if (++batch.completed == batch.count) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // The exact serial path: same thread, same order, exceptions propagate
    // directly.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ROBOADS_CHECK(batch_ == nullptr,
                  "thread pool parallel_for is not reentrant");
    batch_ = &batch;
    ++epoch_;
  }
  work_cv_.notify_all();

  run_items(batch);  // the calling thread is the n-th worker

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch.completed == batch.count && batch.active == 0;
    });
    batch_ = nullptr;
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace roboads::common
