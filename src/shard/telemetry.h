// Per-worker telemetry streams: the worker half of the live campaign
// telemetry plane (docs/OBSERVABILITY.md "Live campaign telemetry").
//
// Each worker appends periodic JSONL records — jobs done, per-group
// outcome tallies, a mergeable detector-step latency histogram snapshot,
// and rusage — to `telemetry-<label>.jsonl` next to its checkpoint. The
// file shares the checkpoint's crash model: append-only, flushed per
// record, at most one torn final line after a SIGKILL, repaired/skipped by
// the same torn-tail-tolerant reader (obs/jsonl.h). Unlike checkpoints,
// telemetry never feeds results: the merged report is derived from
// checkpoints alone, so a lost telemetry tail costs staleness, not
// correctness.
//
// Records are *per worker instance* (keyed by pid): a retried worker
// starts its own counters at zero, and aggregation takes the last record
// of every instance and merges — exactly where the histogram snapshots'
// exact mergeability pays off (obs::HistogramSnapshot).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "shard/checkpoint.h"

namespace roboads::shard {

// Outcome tallies for one replication group, as seen by one worker
// instance.
struct TelemetryGroupTally {
  std::uint64_t done = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t violations = 0;
  std::uint64_t alarms = 0;  // jobs with any sensor/actuator positive
};

struct TelemetryRecord {
  std::string label;          // worker label (s0, v1-2)
  std::int64_t instance = 0;  // pid of the writing worker instance
  std::uint64_t seq = 0;      // per-instance sequence number, from 0
  double unix_time = 0.0;     // CLOCK_REALTIME at append
  double elapsed_seconds = 0.0;  // since this instance started
  std::uint64_t jobs_assigned = 0;  // handed to this instance at launch
  std::uint64_t jobs_done = 0;      // completed by this instance
  std::map<std::string, TelemetryGroupTally> groups;
  obs::HistogramSnapshot step_latency;  // engine.step_ns, this instance
  // getrusage(RUSAGE_SELF) at append.
  double max_rss_kb = 0.0;
  double user_seconds = 0.0;
  double system_seconds = 0.0;

  // This instance's completion rate; 0 until time has passed.
  double jobs_per_second() const {
    return elapsed_seconds > 0.0 ? jobs_done / elapsed_seconds : 0.0;
  }
};

std::string serialize_telemetry(const TelemetryRecord& record);
TelemetryRecord parse_telemetry(const std::string& line, std::size_t line_no);

// Reads every record of one stream, tolerating (and with `repair` also
// truncating) a torn final line; corruption earlier in the file throws
// ManifestError. A missing file reads as empty.
std::vector<TelemetryRecord> read_telemetry_file(const std::string& path,
                                                 bool repair);

std::string telemetry_path(const std::string& dir, const std::string& label);

// The worker-side appender. Owns the stream file: repairs its own torn
// tail on construction, appends the versioned header if fresh, then emits
// one record per `interval_seconds` (checked on job boundaries) plus one
// final record from flush(). interval_seconds <= 0 disables everything —
// every call becomes a no-op and no file is created.
class TelemetryStream {
 public:
  TelemetryStream(const std::string& dir, const std::string& label,
                  double interval_seconds, obs::MetricsRegistry* metrics);

  void set_jobs_assigned(std::uint64_t n);
  // Folds one completed job's outcome into the tallies and appends a
  // record if the interval has elapsed.
  void job_finished(const JobOutcome& outcome);
  // Unconditionally appends a record (start-of-run and end-of-run marks).
  void flush();

  bool enabled() const { return enabled_; }

 private:
  void append_record();

  bool enabled_ = false;
  double interval_seconds_ = 0.0;
  double started_monotonic_ = 0.0;
  double last_append_monotonic_ = 0.0;
  obs::MetricsRegistry* metrics_ = nullptr;
  TelemetryRecord record_;  // running state; seq advances per append
  std::ofstream os_;
};

}  // namespace roboads::shard
