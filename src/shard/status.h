// Supervisor-side aggregation of the live telemetry plane: one atomic
// `status.json` snapshot per run directory, derived from the same files
// that make campaigns crash-resilient — checkpoints are the ground truth
// for progress, heartbeats for per-worker liveness, telemetry streams for
// rates, rusage and the fleet-wide detector-step latency distribution
// (docs/OBSERVABILITY.md "Live campaign telemetry").
//
// build_status() reads only the run directory, so a status can be computed
// by the supervisor mid-run, by `roboads_shard watch --manifest=...` after
// the supervisor died, or by CI against a finished run — all three agree
// because none of them trusts anything but the files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "shard/manifest.h"

namespace roboads::shard {

// One worker label's row in the monitor.
struct WorkerStatus {
  std::string label;
  // Seconds since the last heartbeat; -1 = no heartbeat file yet.
  double heartbeat_age_seconds = -1.0;
  std::uint64_t jobs_done = 0;  // outcome lines in this label's checkpoint
  // From the heartbeat payload (this worker instance).
  std::uint64_t instance_jobs_done = 0;
  std::string last_job;
  double last_job_unix_time = 0.0;
  std::string current_job;
  // From the latest telemetry record of the latest instance.
  double rate_jobs_per_second = 0.0;
  double max_rss_kb = 0.0;
};

// Counters only the live supervisor knows (zero when a status is built
// offline from files alone).
struct SupervisionCounters {
  std::uint64_t launches = 0;
  std::uint64_t crashes = 0;
  std::uint64_t hangs = 0;
  std::uint64_t lost_shards = 0;
  std::uint64_t salvage_workers = 0;
  std::uint64_t slow_job_grants = 0;  // watchdog grace periods granted
};

struct RunStatus {
  double unix_time = 0.0;
  std::uint64_t total_jobs = 0;
  // Progress, from the deduplicated checkpoint outcomes (the ground truth
  // the merged report is built from).
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t violations = 0;
  bool complete = false;
  double progress = 0.0;  // completed / total_jobs (0 when empty manifest)
  // Supervisor wall-clock seconds (0 when built offline).
  double elapsed_seconds = 0.0;
  // Fleet completion rate (sum of live worker rates) and the derived ETA;
  // eta_seconds < 0 means unknown (no rate yet, or already complete).
  double rate_jobs_per_second = 0.0;
  double eta_seconds = -1.0;
  SupervisionCounters counters;
  // Fleet-wide engine.step_ns distribution: every worker instance's
  // snapshot merged exactly (obs::HistogramSnapshot::merge).
  obs::HistogramSnapshot step_latency;
  std::vector<WorkerStatus> workers;  // label order
};

// A worker whose heartbeat is older than this is excluded from the fleet
// completion rate (it is dead, stopped, or between retries; counting it
// would inflate the ETA's denominator). The threshold scales with the
// configured heartbeat/telemetry cadence — a worker legitimately beating
// every 15 s must not be declared dead at 10 s — with a floor for fast
// cadences so one missed beat isn't a death sentence.
// `heartbeat_interval_seconds <= 0` selects the floor alone.
double live_heartbeat_threshold_seconds(double heartbeat_interval_seconds);

// Computes a status from the run directory's files. Tolerates torn
// telemetry/heartbeat tails (never repairs — sibling processes may be
// writing); throws only on real mid-file corruption.
// `heartbeat_interval_seconds` is the cadence the run's workers were
// configured with (--telemetry-interval); it sets the liveness threshold
// via live_heartbeat_threshold_seconds.
RunStatus build_status(const Manifest& manifest, const std::string& dir,
                       const SupervisionCounters& counters = {},
                       double elapsed_seconds = 0.0,
                       double heartbeat_interval_seconds = 0.0);

// Single-line JSON round-trip (byte-stable through write→parse→write).
std::string serialize_status(const RunStatus& status);
RunStatus parse_status(const std::string& line);

std::string status_path(const std::string& dir);  // <dir>/status.json

// Atomic publish: write <path>.tmp, rename over <path> — readers never see
// a partial snapshot.
void write_status_file(const std::string& path, const RunStatus& status);
// Throws CheckError when missing/unreadable.
RunStatus read_status_file(const std::string& path);

// The `roboads_shard watch` terminal rendering: progress bar, fleet
// latency quantiles, per-worker rows.
std::string render_status(const RunStatus& status);

}  // namespace roboads::shard
