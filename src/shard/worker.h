// The worker process half of the sharded runner. A worker is launched by the
// supervisor (or by hand) with a manifest, a run directory and a label; it
// repairs and replays its own checkpoint, heartbeats, executes whatever of
// its assigned jobs are still pending — in manifest order — and appends one
// flushed outcome line per job. It is safe to SIGKILL at any instant: the
// next launch of the same label loses at most the job in flight.
//
// Workers are re-execs of the *host binary*: any program that embeds the
// runner (tools/roboads_shard, roboads_fuzz, bench/seed_robustness, the
// chaos test) dispatches `--shard-worker` as its first argument to
// worker_main() before its own CLI parsing, and self_exec_launcher() builds
// the matching command line from /proc/self/exe. One binary, N processes —
// no separate worker executable to keep in sync.
#pragma once

#include <string>
#include <vector>

#include "shard/exec.h"
#include "shard/supervise.h"

namespace roboads::shard {

struct WorkerOptions {
  std::string manifest_path;
  std::string dir;    // run directory (checkpoints, heartbeats, bundles)
  std::string label;  // names this worker's checkpoint/heartbeat files
  // Jobs to run, by manifest id. Empty with shard >= 0 selects every job of
  // that shard (the by-hand form); the supervisor always passes explicit
  // ids, already filtered of completed work.
  std::vector<std::string> job_ids;
  int shard = -1;
  bool record_bundles = false;
  std::size_t shrink_budget = 120;
  // Seconds between telemetry records (shard/telemetry.h); <= 0 disables
  // the telemetry stream and the per-job latency instrumentation entirely.
  double telemetry_interval_seconds = 5.0;
};

// Runs the worker loop to completion. Returns a process exit code: 0 when
// every selected job has an outcome (even "failed" ones — those are results,
// not worker errors), non-zero on worker-level faults (unreadable manifest,
// unwritable run directory).
int run_worker(const WorkerOptions& options);

// Parses `--manifest= --dir= --label= [--shard=N] [--job=ID ...]
// [--bundles] [--shrink-budget=N] [--telemetry-interval=S]` and calls
// run_worker. `args` excludes the `--shard-worker` dispatch token.
int worker_main(const std::vector<std::string>& args);

// A WorkerLauncher that re-execs the current binary (/proc/self/exe) with
// `--shard-worker` and the flags worker_main expects.
WorkerLauncher self_exec_launcher(const std::string& manifest_path,
                                  const std::string& dir,
                                  bool record_bundles,
                                  std::size_t shrink_budget = 120,
                                  double telemetry_interval_seconds = 5.0);

}  // namespace roboads::shard
