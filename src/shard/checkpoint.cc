#include "shard/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>

#include "obs/json.h"
#include "obs/jsonl.h"

namespace roboads::shard {
namespace {

namespace json = obs::json;
namespace fs = std::filesystem;

constexpr char kCheckpointName[] = "roboads-shard-checkpoint";

void write_delay(std::ostream& os, const OutcomeDelay& d) {
  os << '{';
  json::write_field_key(os, "label", /*first=*/true);
  json::write_escaped(os, d.label);
  json::write_field_key(os, "triggered_at");
  os << d.triggered_at;
  json::write_field_key(os, "seconds");
  if (d.seconds.has_value()) {
    json::write_number(os, *d.seconds);
  } else {
    os << "null";
  }
  os << '}';
}

void write_finding(std::ostream& os, const OutcomeFinding& f) {
  os << '{';
  json::write_field_key(os, "invariant", /*first=*/true);
  json::write_escaped(os, f.invariant);
  json::write_field_key(os, "detail");
  json::write_escaped(os, f.detail);
  json::write_field_key(os, "spec");
  json::write_escaped(os, f.spec_text);
  json::write_field_key(os, "shrunk");
  json::write_escaped(os, f.shrunk_text);
  os << '}';
}

}  // namespace

std::string serialize_outcome(const JobOutcome& outcome) {
  std::ostringstream os;
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"outcome\"";
  json::write_field_key(os, "id");
  json::write_escaped(os, outcome.id);
  json::write_field_key(os, "group");
  json::write_escaped(os, outcome.group);
  json::write_field_key(os, "job");
  json::write_escaped(os, outcome.name);
  json::write_field_key(os, "status");
  json::write_escaped(os, outcome.status);
  json::write_field_key(os, "sensor");
  json::write_ints(os, {outcome.sensor_tp, outcome.sensor_fp,
                        outcome.sensor_tn, outcome.sensor_fn});
  json::write_field_key(os, "actuator");
  json::write_ints(os, {outcome.actuator_tp, outcome.actuator_fp,
                        outcome.actuator_tn, outcome.actuator_fn});
  json::write_field_key(os, "delays");
  os << '[';
  for (std::size_t i = 0; i < outcome.delays.size(); ++i) {
    if (i > 0) os << ',';
    write_delay(os, outcome.delays[i]);
  }
  os << ']';
  json::write_field_key(os, "sensor_sequence");
  json::write_escaped(os, outcome.sensor_sequence);
  json::write_field_key(os, "actuator_sequence");
  json::write_escaped(os, outcome.actuator_sequence);
  json::write_field_key(os, "bundles");
  json::write_strings(os, outcome.bundle_files);
  json::write_field_key(os, "failure");
  json::write_escaped(os, outcome.failure);
  json::write_field_key(os, "failure_step");
  os << outcome.failure_step;
  json::write_field_key(os, "findings");
  os << '[';
  for (std::size_t i = 0; i < outcome.findings.size(); ++i) {
    if (i > 0) os << ',';
    write_finding(os, outcome.findings[i]);
  }
  os << ']';
  os << '}';
  return os.str();
}

JobOutcome parse_outcome(const std::string& line, std::size_t line_no) {
  const std::string context = "checkpoint line " + std::to_string(line_no);
  json::Fields f(json::parse_object_line(line, context), context);
  if (f.string("event") != "outcome") {
    throw ManifestError(context + ": expected an outcome line");
  }
  JobOutcome out;
  out.id = f.string("id");
  out.group = f.string("group");
  out.name = f.string("job");
  out.status = f.string("status");
  const std::vector<std::int64_t> sensor = f.integers("sensor");
  const std::vector<std::int64_t> actuator = f.integers("actuator");
  if (sensor.size() != 4 || actuator.size() != 4) {
    throw ManifestError(context + ": confusion counts need 4 entries");
  }
  out.sensor_tp = sensor[0];
  out.sensor_fp = sensor[1];
  out.sensor_tn = sensor[2];
  out.sensor_fn = sensor[3];
  out.actuator_tp = actuator[0];
  out.actuator_fp = actuator[1];
  out.actuator_tn = actuator[2];
  out.actuator_fn = actuator[3];
  for (const json::Fields& d : f.objects("delays")) {
    OutcomeDelay delay;
    delay.label = d.string("label");
    delay.triggered_at = static_cast<std::size_t>(d.integer("triggered_at"));
    const double seconds = d.number("seconds");
    if (seconds == seconds) delay.seconds = seconds;  // null parses as NaN
    out.delays.push_back(std::move(delay));
  }
  out.sensor_sequence = f.string("sensor_sequence");
  out.actuator_sequence = f.string("actuator_sequence");
  out.bundle_files = f.strings("bundles");
  out.failure = f.string("failure");
  out.failure_step = static_cast<std::size_t>(f.integer("failure_step"));
  for (const json::Fields& v : f.objects("findings")) {
    OutcomeFinding finding;
    finding.invariant = v.string("invariant");
    finding.detail = v.string("detail");
    finding.spec_text = v.string("spec");
    finding.shrunk_text = v.string("shrunk");
    out.findings.push_back(std::move(finding));
  }
  return out;
}

void write_checkpoint_header(std::ostream& os) {
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"checkpoint\"";
  json::write_field_key(os, "name");
  os << '"' << kCheckpointName << '"';
  json::write_field_key(os, "version");
  os << 1;
  os << "}\n";
  os.flush();
}

void append_outcome(std::ostream& os, const JobOutcome& outcome) {
  os << serialize_outcome(outcome) << '\n';
  os.flush();
}

std::vector<JobOutcome> read_checkpoint_file(const std::string& path,
                                             bool repair) {
  std::vector<JobOutcome> outcomes;
  bool saw_header = false;
  json::read_jsonl_tail_tolerant(
      path,
      [&](const std::string& line, std::size_t line_no) {
        if (!saw_header) {
          const std::string context =
              "checkpoint line " + std::to_string(line_no);
          json::Fields f(json::parse_object_line(line, context), context);
          if (f.string("event") != "checkpoint" ||
              f.string("name") != kCheckpointName ||
              f.integer("version") != 1) {
            throw ManifestError(context + ": not a checkpoint header");
          }
          saw_header = true;
        } else {
          outcomes.push_back(parse_outcome(line, line_no));
        }
      },
      repair,
      [&](const std::exception& e) {
        // Corruption anywhere but the final line is not a torn tail — the
        // file was damaged after the fact, and silently dropping completed
        // work would undercount the campaign.
        throw ManifestError(path + ": corrupt checkpoint (" + e.what() + ")");
      });
  return outcomes;
}

std::vector<JobOutcome> load_run_outcomes(const std::string& dir) {
  std::vector<std::string> paths;
  if (fs::exists(dir)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("checkpoint-", 0) == 0 &&
          name.size() > 6 && name.substr(name.size() - 6) == ".jsonl") {
        paths.push_back(entry.path().string());
      }
    }
  }
  // Directory iteration order is filesystem-dependent; sort so dedup (and
  // with it the merged report) is deterministic.
  std::sort(paths.begin(), paths.end());
  std::vector<JobOutcome> outcomes;
  std::set<std::string> seen;
  for (const std::string& path : paths) {
    for (JobOutcome& outcome : read_checkpoint_file(path, /*repair=*/false)) {
      if (seen.insert(outcome.id).second) {
        outcomes.push_back(std::move(outcome));
      }
    }
  }
  return outcomes;
}

std::string checkpoint_path(const std::string& dir, const std::string& label) {
  return dir + "/checkpoint-" + label + ".jsonl";
}

std::string heartbeat_path(const std::string& dir, const std::string& label) {
  return dir + "/heartbeat-" + label;
}

}  // namespace roboads::shard
