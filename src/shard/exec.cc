#include "shard/exec.h"

#include <filesystem>
#include <random>

#include "eval/batch.h"
#include "scenario/compile.h"
#include "scenario/fuzz.h"
#include "scenario/library.h"

namespace roboads::shard {
namespace {

scenario::ScenarioSpec resolve_spec(const ManifestJob& job) {
  if (job.kind == JobKind::kSpec) {
    return scenario::parse(job.spec_text);
  }
  for (scenario::ScenarioSpec& spec : scenario::all_library_specs()) {
    if (spec.name == job.scenario) return std::move(spec);
  }
  throw ManifestError("job \"" + job.id + "\": unknown library scenario \"" +
                      job.scenario + "\"");
}

JobOutcome execute_mission_job(const ManifestJob& job,
                               const ExecConfig& config, JobOutcome out) {
  scenario::ScenarioSpec spec = resolve_spec(job);
  if (job.iterations > 0) spec.iterations = job.iterations;
  out.name = spec.name;

  const std::unique_ptr<eval::Platform> platform =
      scenario::make_platform(spec.platform);
  const scenario::PlatformTraits traits =
      scenario::platform_traits(spec.platform);

  eval::MissionJob mission;
  mission.name = spec.name;
  mission.make_scenario = [&spec, &platform, &traits] {
    return scenario::compile_spec(spec, *platform, traits);
  };
  mission.config.iterations = spec.iterations;
  mission.config.seed = job.seed;
  mission.config.transport_faults =
      scenario::transport_faults_of(spec, *platform);
  // The job id leads the observability label, so trace events and bundle
  // filenames are unique per manifest job and — crucially — identical no
  // matter which worker instance (original, retry, salvage, serial
  // reference) flies the job.
  mission.config.obs_label = job.id + "/" + spec.name + "/s" +
                             std::to_string(job.seed);

  sim::WorkflowConfig workflow;
  workflow.num_threads = 1;  // process-level parallelism only
  workflow.instruments = config.instruments;
  if (config.record_bundles && !config.run_dir.empty()) {
    workflow.recorder.enabled = true;
    workflow.record_out = config.run_dir + "/bundles/";
    std::filesystem::create_directories(config.run_dir + "/bundles");
  }

  const std::vector<eval::MissionJobResult> results =
      eval::run_mission_batch(*platform, {mission}, workflow);
  const eval::MissionJobResult& r = results.front();
  for (const std::string& path : r.bundle_paths) {
    // Run-dir-relative, so a run directory can be moved or merged remotely.
    out.bundle_files.push_back(path.substr(config.run_dir.size() + 1));
  }
  if (r.failed()) {
    out.status = "failed";
    out.failure = r.failure->what;
    out.failure_step = r.failure->step;
    return out;
  }
  out.status = "ok";
  out.sensor_tp = static_cast<std::int64_t>(r.score.sensor.true_positives);
  out.sensor_fp = static_cast<std::int64_t>(r.score.sensor.false_positives);
  out.sensor_tn = static_cast<std::int64_t>(r.score.sensor.true_negatives);
  out.sensor_fn = static_cast<std::int64_t>(r.score.sensor.false_negatives);
  out.actuator_tp =
      static_cast<std::int64_t>(r.score.actuator.true_positives);
  out.actuator_fp =
      static_cast<std::int64_t>(r.score.actuator.false_positives);
  out.actuator_tn =
      static_cast<std::int64_t>(r.score.actuator.true_negatives);
  out.actuator_fn =
      static_cast<std::int64_t>(r.score.actuator.false_negatives);
  for (const eval::DelayRecord& d : r.score.delays) {
    OutcomeDelay delay;
    delay.label = d.label;
    delay.triggered_at = d.triggered_at;
    delay.seconds = d.seconds;
    out.delays.push_back(std::move(delay));
  }
  out.sensor_sequence = r.score.sensor_condition_sequence;
  out.actuator_sequence = r.score.actuator_condition_sequence;
  return out;
}

JobOutcome execute_fuzz_job(const ManifestJob& job, const ExecConfig& config,
                            JobOutcome out) {
  scenario::FuzzConfig fuzz;
  fuzz.seed = job.fuzz_seed;
  fuzz.iterations = job.fuzz_iterations;
  fuzz.max_attacks = job.max_attacks;
  fuzz.platforms = job.platforms;
  fuzz.fault_probability = job.fault_probability;
  fuzz.shrink_budget = config.shrink_budget;
  if (fuzz.platforms.empty()) {
    throw ManifestError("job \"" + job.id + "\": fuzz job needs platforms");
  }

  // Campaign regeneration must match scenario::run_fuzzer exactly: same
  // engine seeding, same round-robin platform pick, so campaign i of a
  // sharded sweep is the identical spec a serial sweep would fly.
  std::mt19937_64 engine(fuzz.seed * 0x9e3779b97f4a7c15ULL + job.fuzz_index);
  const std::string& platform =
      fuzz.platforms[job.fuzz_index % fuzz.platforms.size()];
  const scenario::ScenarioSpec spec =
      scenario::random_campaign(engine, platform, job.fuzz_index, fuzz);
  out.name = spec.name;

  const std::optional<scenario::InvariantViolation> violation =
      scenario::check_campaign(spec, config.instruments);
  if (!violation) {
    out.status = "ok";
    return out;
  }
  OutcomeFinding finding;
  finding.invariant = violation->invariant;
  finding.detail = violation->detail;
  finding.spec_text = scenario::serialize(spec);
  finding.shrunk_text = scenario::serialize(
      scenario::shrink_campaign(spec, *violation, fuzz.shrink_budget));
  out.findings.push_back(std::move(finding));
  out.status = "violation";
  return out;
}

}  // namespace

JobOutcome execute_job(const ManifestJob& job, const ExecConfig& config) {
  JobOutcome out;
  out.id = job.id;
  out.group = job.group;
  out.name = job.scenario;
  try {
    if (job.kind == JobKind::kFuzz) {
      return execute_fuzz_job(job, config, std::move(out));
    }
    return execute_mission_job(job, config, std::move(out));
  } catch (const std::exception& e) {
    // The inner batch already contains mission crashes; reaching here means
    // setup failed (bad spec text, unknown scenario, unwritable bundles).
    JobOutcome failed;
    failed.id = job.id;
    failed.group = job.group;
    failed.name = out.name;
    failed.status = "failed";
    failed.failure = e.what();
    return failed;
  }
}

}  // namespace roboads::shard
