// Merges per-shard checkpoint outcomes into one campaign report.
//
// The report is JSONL, rendered deterministically: header, whole-campaign
// aggregates, per-metric 95% confidence intervals across replication
// groups, per-group lines, a missing-jobs line when coverage is partial,
// then every job outcome re-serialized canonically in job-id order. Nothing
// in it depends on shard attribution, worker identity, retry history or
// wall-clock time — so a chaos-interrupted, resumed, salvaged run renders a
// report byte-identical to an uninterrupted serial run over the same
// manifest (tests/shard_chaos_test.cc pins this).
#pragma once

#include <string>
#include <vector>

#include "shard/checkpoint.h"
#include "shard/manifest.h"

namespace roboads::shard {

struct MergeStats {
  std::size_t total_jobs = 0;
  std::size_t completed = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t violations = 0;  // fuzz jobs with invariant findings
  bool complete = false;
  std::vector<std::string> missing_ids;
};

struct MergedReport {
  MergeStats stats;
  std::string text;  // the full report.jsonl contents
};

// Merges explicit outcomes (the serial reference path). Outcomes not in the
// manifest throw ManifestError; duplicates by id are rejected too.
MergedReport merge_outcomes(const Manifest& manifest,
                            std::vector<JobOutcome> outcomes);

// Loads every checkpoint under `dir` and merges (the sharded path).
MergedReport merge_run(const Manifest& manifest, const std::string& dir);

}  // namespace roboads::shard
