#include "shard/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/jsonl.h"
#include "scenario/library.h"

namespace roboads::shard {
namespace {

namespace json = obs::json;

constexpr char kManifestName[] = "roboads-shard-manifest";

[[noreturn]] void manifest_error(std::size_t line, const std::string& what) {
  throw ManifestError("manifest line " + std::to_string(line) + ": " + what);
}

JobKind kind_from(const std::string& word, std::size_t line) {
  if (word == "spec") return JobKind::kSpec;
  if (word == "library") return JobKind::kLibrary;
  if (word == "fuzz") return JobKind::kFuzz;
  manifest_error(line, "unknown job kind \"" + word + "\"");
}

void write_job(std::ostream& os, const ManifestJob& job) {
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"job\"";
  json::write_field_key(os, "id");
  json::write_escaped(os, job.id);
  json::write_field_key(os, "shard");
  os << job.shard;
  json::write_field_key(os, "kind");
  os << '"' << to_string(job.kind) << '"';
  json::write_field_key(os, "group");
  json::write_escaped(os, job.group);
  switch (job.kind) {
    case JobKind::kSpec:
      json::write_field_key(os, "seed");
      os << job.seed;
      json::write_field_key(os, "iterations");
      os << job.iterations;
      json::write_field_key(os, "spec");
      json::write_escaped(os, job.spec_text);
      break;
    case JobKind::kLibrary:
      json::write_field_key(os, "seed");
      os << job.seed;
      json::write_field_key(os, "iterations");
      os << job.iterations;
      json::write_field_key(os, "scenario");
      json::write_escaped(os, job.scenario);
      break;
    case JobKind::kFuzz:
      json::write_field_key(os, "fuzz_seed");
      os << job.fuzz_seed;
      json::write_field_key(os, "fuzz_index");
      os << job.fuzz_index;
      json::write_field_key(os, "fuzz_iterations");
      os << job.fuzz_iterations;
      json::write_field_key(os, "max_attacks");
      os << job.max_attacks;
      json::write_field_key(os, "fault_probability");
      json::write_number(os, job.fault_probability);
      json::write_field_key(os, "platforms");
      json::write_strings(os, job.platforms);
      break;
  }
  os << "}\n";
}

}  // namespace

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kSpec: return "spec";
    case JobKind::kLibrary: return "library";
    case JobKind::kFuzz: return "fuzz";
  }
  return "?";
}

std::string serialize(const Manifest& manifest) {
  std::ostringstream os;
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"manifest\"";
  json::write_field_key(os, "name");
  os << '"' << kManifestName << '"';
  json::write_field_key(os, "version");
  os << Manifest::kVersion;
  json::write_field_key(os, "shards");
  os << manifest.shards;
  json::write_field_key(os, "jobs");
  os << manifest.jobs.size();
  os << "}\n";
  for (const ManifestJob& job : manifest.jobs) write_job(os, job);
  return os.str();
}

namespace {

Manifest parse_manifest_impl(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t num = 0;
  Manifest manifest;
  bool saw_header = false;
  std::size_t declared_jobs = 0;
  while (std::getline(is, line)) {
    ++num;
    if (line.empty()) continue;
    const std::string context = "manifest line " + std::to_string(num);
    json::Fields f(json::parse_object_line(line, context), context);
    const std::string& event = f.string("event");
    if (!saw_header) {
      if (event != "manifest") {
        manifest_error(num, "expected the manifest header line first");
      }
      if (f.string("name") != kManifestName) {
        manifest_error(num, "not a " + std::string(kManifestName) + " file");
      }
      if (f.integer("version") != Manifest::kVersion) {
        manifest_error(num, "unsupported manifest version " +
                                std::to_string(f.integer("version")));
      }
      manifest.shards = static_cast<std::size_t>(f.integer("shards"));
      if (manifest.shards == 0) manifest_error(num, "shards must be >= 1");
      declared_jobs = static_cast<std::size_t>(f.integer("jobs"));
      saw_header = true;
      continue;
    }
    if (event != "job") {
      manifest_error(num, "unexpected event \"" + event + "\"");
    }
    ManifestJob job;
    job.id = f.string("id");
    if (job.id.empty()) manifest_error(num, "job id must be non-empty");
    job.shard = static_cast<std::size_t>(f.integer("shard"));
    if (job.shard >= manifest.shards) {
      manifest_error(num, "job \"" + job.id + "\" assigned to shard " +
                              std::to_string(job.shard) + " of " +
                              std::to_string(manifest.shards));
    }
    job.kind = kind_from(f.string("kind"), num);
    job.group = f.string("group");
    switch (job.kind) {
      case JobKind::kSpec:
        job.seed = static_cast<std::uint64_t>(f.integer("seed"));
        job.iterations = static_cast<std::size_t>(f.integer("iterations"));
        job.spec_text = f.string("spec");
        break;
      case JobKind::kLibrary:
        job.seed = static_cast<std::uint64_t>(f.integer("seed"));
        job.iterations = static_cast<std::size_t>(f.integer("iterations"));
        job.scenario = f.string("scenario");
        break;
      case JobKind::kFuzz:
        job.fuzz_seed = static_cast<std::uint64_t>(f.integer("fuzz_seed"));
        job.fuzz_index = static_cast<std::size_t>(f.integer("fuzz_index"));
        job.fuzz_iterations =
            static_cast<std::size_t>(f.integer("fuzz_iterations"));
        job.max_attacks = static_cast<std::size_t>(f.integer("max_attacks"));
        job.fault_probability = f.number("fault_probability");
        job.platforms = f.strings("platforms");
        break;
    }
    for (const ManifestJob& seen : manifest.jobs) {
      if (seen.id == job.id) {
        manifest_error(num, "duplicate job id \"" + job.id + "\"");
      }
    }
    manifest.jobs.push_back(std::move(job));
  }
  if (!saw_header) throw ManifestError("manifest parse error: empty input");
  if (manifest.jobs.size() != declared_jobs) {
    throw ManifestError("manifest declares " + std::to_string(declared_jobs) +
                        " jobs but carries " +
                        std::to_string(manifest.jobs.size()));
  }
  return manifest;
}

}  // namespace

Manifest parse_manifest(const std::string& text) {
  // JSON-level problems (unparseable line, missing/mistyped field) surface
  // as ManifestError too: to a caller, a line that is not JSON and a line
  // with the wrong fields are the same kind of bad input file.
  try {
    return parse_manifest_impl(text);
  } catch (const ManifestError&) {
    throw;
  } catch (const std::exception& e) {
    throw ManifestError(e.what());
  }
}

void write_manifest_file(const std::string& path, const Manifest& manifest) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw ManifestError("cannot open " + path + " for writing");
  os << serialize(manifest);
  if (!os.flush()) throw ManifestError("failed writing " + path);
}

Manifest read_manifest_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ManifestError("cannot open " + path);
  std::ostringstream text;
  text << is.rdbuf();
  return parse_manifest(text.str());
}

Manifest table2_manifest(const std::vector<std::uint64_t>& seeds,
                         std::size_t shards, std::size_t iterations) {
  Manifest manifest;
  manifest.shards = shards;
  const std::vector<scenario::ScenarioSpec> specs =
      scenario::khepera_table2_specs();
  std::size_t i = 0;
  for (std::uint64_t seed : seeds) {
    for (std::size_t n = 1; n <= specs.size(); ++n) {
      ManifestJob job;
      char id[16];
      std::snprintf(id, sizeof(id), "j%05zu", i);
      job.id = id;
      job.shard = i % shards;
      job.kind = JobKind::kLibrary;
      job.group = "seed-" + std::to_string(seed);
      // The bench/seed_robustness convention: each scenario of a
      // replication flies at seed*1000 + its Table II number.
      job.seed = seed * 1000 + n;
      job.iterations = iterations;
      job.scenario = specs[n - 1].name;
      manifest.jobs.push_back(std::move(job));
      ++i;
    }
  }
  return manifest;
}

Manifest fuzz_manifest(const scenario::FuzzConfig& config,
                       std::size_t shards) {
  Manifest manifest;
  manifest.shards = shards;
  for (std::size_t i = 0; i < config.campaigns; ++i) {
    ManifestJob job;
    char id[16];
    std::snprintf(id, sizeof(id), "j%05zu", i);
    job.id = id;
    job.shard = i % shards;
    job.kind = JobKind::kFuzz;
    job.group = "fuzz";
    job.fuzz_seed = config.seed;
    job.fuzz_index = i;
    job.fuzz_iterations = config.iterations;
    job.max_attacks = config.max_attacks;
    job.fault_probability = config.fault_probability;
    job.platforms = config.platforms;
    manifest.jobs.push_back(std::move(job));
  }
  return manifest;
}

std::vector<std::uint64_t> default_seed_series(std::size_t n) {
  static constexpr std::uint64_t kClassic[] = {11, 23, 37, 59, 71};
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(i < 5 ? kClassic[i] : 71 + 12 * (i - 4));
  }
  return seeds;
}

}  // namespace roboads::shard
