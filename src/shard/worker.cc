#include "shard/worker.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>

#include "common/parse.h"
#include "obs/metrics.h"
#include "shard/checkpoint.h"
#include "shard/heartbeat.h"
#include "shard/manifest.h"
#include "shard/telemetry.h"

namespace roboads::shard {
namespace {

namespace fs = std::filesystem;

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  try {
    const Manifest manifest = read_manifest_file(options.manifest_path);
    fs::create_directories(options.dir);

    // Which manifest jobs are ours.
    std::set<std::string> wanted(options.job_ids.begin(),
                                 options.job_ids.end());
    std::vector<const ManifestJob*> assigned;
    for (const ManifestJob& job : manifest.jobs) {
      const bool by_id = wanted.erase(job.id) > 0;
      const bool by_shard = options.job_ids.empty() && options.shard >= 0 &&
                            job.shard == static_cast<std::size_t>(options.shard);
      if (by_id || by_shard) assigned.push_back(&job);
    }
    if (!wanted.empty()) {
      throw ManifestError("job \"" + *wanted.begin() +
                          "\" is not in the manifest");
    }

    // Repair our own checkpoint (torn tail from a previous kill), then skip
    // everything it already records. Only our *own* file is repaired —
    // sibling workers may be appending to theirs right now.
    const std::string path = checkpoint_path(options.dir, options.label);
    std::set<std::string> done;
    for (const JobOutcome& outcome :
         read_checkpoint_file(path, /*repair=*/true)) {
      done.insert(outcome.id);
    }
    const bool fresh = !fs::exists(path) || fs::file_size(path) == 0;
    std::ofstream os(path, fresh ? std::ios::binary
                                 : std::ios::binary | std::ios::app);
    if (!os) {
      std::cerr << "worker " << options.label << ": cannot open " << path
                << "\n";
      return 2;
    }
    if (fresh) write_checkpoint_header(os);

    ExecConfig exec;
    exec.run_dir = options.dir;
    exec.record_bundles = options.record_bundles;
    exec.shrink_budget = options.shrink_budget;

    // Telemetry plane: a worker-local metrics registry feeds the periodic
    // stream with detector-step latency histograms. Coarse timers keep the
    // always-on cost to the engine.step_ns/decision.evaluate_ns pair
    // (bench/obs_overhead gates it); the full per-stage NUISE timers remain
    // an explicit opt-in for report runs.
    obs::MetricsRegistry registry;
    const bool telemetry_on = options.telemetry_interval_seconds > 0.0;
    if (telemetry_on) {
      exec.instruments.metrics = &registry;
      exec.instruments.coarse_timers = true;
    }
    TelemetryStream telemetry(options.dir, options.label,
                              options.telemetry_interval_seconds,
                              telemetry_on ? &registry : nullptr);

    std::uint64_t pending = 0;
    for (const ManifestJob* job : assigned) {
      if (done.count(job->id) == 0) ++pending;
    }
    telemetry.set_jobs_assigned(pending);

    // The structured heartbeat lets the watchdog distinguish "hung job"
    // (no progress this launch) from "slow job" (progress, then quiet).
    Heartbeat beat;
    beat.label = options.label;
    const std::string beat_path = heartbeat_path(options.dir, options.label);
    write_heartbeat(beat_path, beat);
    if (telemetry.enabled()) telemetry.flush();  // start-of-run mark
    for (const ManifestJob* job : assigned) {
      if (done.count(job->id) != 0) continue;
      beat.current_job = job->id;
      write_heartbeat(beat_path, beat);
      const JobOutcome outcome = execute_job(*job, exec);
      append_outcome(os, outcome);
      telemetry.job_finished(outcome);
      ++beat.jobs_done;
      beat.last_job = job->id;
      beat.last_job_unix_time = unix_now_seconds();
      beat.current_job.clear();
      write_heartbeat(beat_path, beat);
    }
    if (telemetry.enabled()) telemetry.flush();  // end-of-run mark
    write_heartbeat(beat_path, beat);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "worker " << options.label << ": " << e.what() << "\n";
    return 2;
  }
}

int worker_main(const std::vector<std::string>& args) {
  WorkerOptions options;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--manifest", &value)) {
      options.manifest_path = value;
    } else if (flag_value(arg, "--dir", &value)) {
      options.dir = value;
    } else if (flag_value(arg, "--label", &value)) {
      options.label = value;
    } else if (flag_value(arg, "--shard", &value)) {
      // Malformed numerics must be a diagnostic + exit 2, never an uncaught
      // std::invalid_argument that kills the worker before run_worker's
      // try/catch can see it (the supervisor would read that as a crash and
      // burn a retry on input that can never parse).
      const auto shard = common::parse_i64(value);
      if (!shard || *shard < -1) {
        std::cerr << "shard worker: --shard expects a shard index, got \""
                  << value << "\"\n";
        return 2;
      }
      options.shard = static_cast<int>(*shard);
    } else if (flag_value(arg, "--job", &value)) {
      options.job_ids.push_back(value);
    } else if (flag_value(arg, "--shrink-budget", &value)) {
      const auto budget = common::parse_u64(value);
      if (!budget) {
        std::cerr << "shard worker: --shrink-budget expects a non-negative "
                     "integer, got \""
                  << value << "\"\n";
        return 2;
      }
      options.shrink_budget = static_cast<std::size_t>(*budget);
    } else if (flag_value(arg, "--telemetry-interval", &value)) {
      const auto interval = common::parse_double(value);
      if (!interval || *interval < 0.0) {
        std::cerr << "shard worker: --telemetry-interval expects a "
                     "non-negative number of seconds, got \""
                  << value << "\"\n";
        return 2;
      }
      options.telemetry_interval_seconds = *interval;
    } else if (arg == "--bundles") {
      options.record_bundles = true;
    } else {
      std::cerr << "shard worker: unknown argument " << arg << "\n";
      return 2;
    }
  }
  if (options.manifest_path.empty() || options.dir.empty() ||
      options.label.empty()) {
    std::cerr << "shard worker: --manifest, --dir and --label are required\n";
    return 2;
  }
  return run_worker(options);
}

WorkerLauncher self_exec_launcher(const std::string& manifest_path,
                                  const std::string& dir, bool record_bundles,
                                  std::size_t shrink_budget,
                                  double telemetry_interval_seconds) {
  const std::string exe = fs::read_symlink("/proc/self/exe").string();
  return [exe, manifest_path, dir, record_bundles, shrink_budget,
          telemetry_interval_seconds](const std::string& label,
                                      const std::vector<std::string>& job_ids) {
    WorkerCommand command;
    command.args = {exe, "--shard-worker", "--manifest=" + manifest_path,
                    "--dir=" + dir, "--label=" + label};
    if (record_bundles) command.args.push_back("--bundles");
    command.args.push_back("--shrink-budget=" + std::to_string(shrink_budget));
    command.args.push_back("--telemetry-interval=" +
                           std::to_string(telemetry_interval_seconds));
    for (const std::string& id : job_ids) {
      command.args.push_back("--job=" + id);
    }
    return command;
  };
}

}  // namespace roboads::shard
