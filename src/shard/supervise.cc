#include "shard/supervise.h"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>

#include "common/check.h"
#include "shard/checkpoint.h"
#include "shard/heartbeat.h"
#include "shard/status.h"

namespace roboads::shard {
namespace {

double monotonic_now() {
  struct timespec ts;
  ROBOADS_CHECK(clock_gettime(CLOCK_MONOTONIC, &ts) == 0,
                "clock_gettime failed");
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void sleep_seconds(double seconds) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - std::floor(seconds)) * 1e9);
  nanosleep(&ts, nullptr);
}

pid_t spawn(const WorkerCommand& command) {
  ROBOADS_CHECK(!command.args.empty(), "worker command needs argv[0]");
  const pid_t pid = fork();
  if (pid == 0) {
    // Orphaned workers must not outlive a killed supervisor — a crashed
    // coordinating process should leave a resumable directory, not a stray
    // pool of compute.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    std::vector<char*> argv;
    argv.reserve(command.args.size() + 1);
    for (const std::string& arg : command.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execvp(argv[0], argv.data());
    _exit(127);
  }
  ROBOADS_CHECK(pid > 0, "fork failed");
  return pid;
}

struct Slot {
  std::string label;
  std::vector<std::string> job_ids;  // assigned manifest job ids
  pid_t pid = -1;
  std::size_t launches = 0;
  double restart_at = 0.0;    // monotonic time gate for the next launch
  double launched_at = 0.0;   // heartbeat fallback until the first beat
  bool killing = false;       // watchdog SIGKILL sent, waiting for the reap
  bool grace_granted = false;  // slow-job grace used for this launch
  double grace_deadline = 0.0;
  bool done = false;
  bool lost = false;

  bool active() const { return !done && !lost; }
};

// Publishes status.json on a throttle. Best-effort by design: a sibling
// worker tearing a telemetry tail mid-read must never take down the
// supervision loop, so every build failure is swallowed and the previous
// snapshot (atomically published) stays in place.
class StatusWriter {
 public:
  StatusWriter(const Manifest& manifest, const std::string& dir,
               double interval_seconds, double heartbeat_interval_seconds)
      : manifest_(manifest),
        dir_(dir),
        interval_seconds_(interval_seconds),
        heartbeat_interval_seconds_(heartbeat_interval_seconds),
        started_(monotonic_now()) {}

  void maybe_write(const SuperviseResult& result) {
    if (interval_seconds_ <= 0.0) return;
    const double now = monotonic_now();
    if (now - last_write_ < interval_seconds_) return;
    write(result, now);
  }

  // The final snapshot of a run (or wave) must not be throttled away.
  void force_write(const SuperviseResult& result) {
    if (interval_seconds_ <= 0.0) return;
    write(result, monotonic_now());
  }

 private:
  void write(const SuperviseResult& result, double now) {
    SupervisionCounters counters;
    counters.launches = result.launches;
    counters.crashes = result.crashes;
    counters.hangs = result.hangs;
    counters.lost_shards = result.lost_shards;
    counters.salvage_workers = result.salvage_workers;
    counters.slow_job_grants = result.slow_job_grants;
    try {
      write_status_file(
          status_path(dir_),
          build_status(manifest_, dir_, counters, now - started_,
                       heartbeat_interval_seconds_));
    } catch (const std::exception&) {
      // Keep supervising; the next interval retries.
    }
    last_write_ = now;
  }

  const Manifest& manifest_;
  const std::string dir_;
  const double interval_seconds_;
  const double heartbeat_interval_seconds_;
  const double started_;
  double last_write_ = -1e18;
};

std::set<std::string> completed_ids(const std::string& dir) {
  std::set<std::string> ids;
  for (const JobOutcome& outcome : load_run_outcomes(dir)) {
    ids.insert(outcome.id);
  }
  return ids;
}

std::vector<std::string> pending_of(const Slot& slot,
                                    const std::set<std::string>& completed) {
  std::vector<std::string> pending;
  for (const std::string& id : slot.job_ids) {
    if (completed.count(id) == 0) pending.push_back(id);
  }
  return pending;
}

// Drives one wave of slots to completion or loss.
void run_wave(std::vector<Slot>& slots, const Manifest& manifest,
              const std::string& dir, const SupervisorConfig& config,
              const WorkerLauncher& launcher, SuperviseResult& result,
              std::size_t& chaos_kills_left, std::size_t& chaos_stops_left,
              std::mt19937_64& chaos_rng, StatusWriter& status) {
  const double grace_seconds = config.slow_job_grace_seconds < 0.0
                                   ? config.heartbeat_timeout_seconds
                                   : config.slow_job_grace_seconds;
  const std::size_t total_jobs = manifest.jobs.size();
  const std::size_t chaos_total = chaos_kills_left + chaos_stops_left;
  // Chaos events fire as completion crosses evenly spaced progress marks, so
  // every injection lands mid-campaign: work exists both behind (exercising
  // resume) and ahead (exercising retry) of the kill.
  std::size_t chaos_fired = 0;

  while (std::any_of(slots.begin(), slots.end(),
                     [](const Slot& s) { return s.active(); })) {
    const double now = monotonic_now();
    const std::set<std::string> completed = completed_ids(dir);

    for (Slot& slot : slots) {
      if (!slot.active()) continue;

      if (slot.pid < 0) {
        if (pending_of(slot, completed).empty()) {
          slot.done = true;
          continue;
        }
        if (now < slot.restart_at) continue;
        if (slot.launches > config.retry.max_retries) {
          slot.lost = true;
          ++result.lost_shards;
          continue;
        }
        const WorkerCommand command =
            launcher(slot.label, pending_of(slot, completed));
        slot.pid = spawn(command);
        slot.launched_at = now;
        slot.grace_granted = false;
        slot.grace_deadline = 0.0;
        ++slot.launches;
        ++result.launches;
        continue;
      }

      // Watchdog: a worker that stopped heartbeating is reclaimed exactly
      // like one that died — SIGKILL works on stopped processes too.
      const std::optional<double> age =
          heartbeat_age_seconds(heartbeat_path(dir, slot.label));
      const double silent =
          age.has_value() ? std::min(*age, now - slot.launched_at)
                          : now - slot.launched_at;
      if (silent > config.heartbeat_timeout_seconds && !slot.killing) {
        // Slow-job grace: a worker whose structured heartbeat shows jobs
        // completed since this launch is plausibly deep in one long job,
        // not hung — grant one extra window (per launch) before the
        // SIGKILL. Workers that never wrote a structured beat (or made no
        // progress) are reclaimed immediately, as before.
        bool reclaim = true;
        if (slot.grace_granted) {
          reclaim = now >= slot.grace_deadline;
        } else if (grace_seconds > 0.0) {
          const std::optional<Heartbeat> beat =
              read_heartbeat(heartbeat_path(dir, slot.label));
          if (beat.has_value() && beat->jobs_done > 0) {
            slot.grace_granted = true;
            slot.grace_deadline = now + grace_seconds;
            ++result.slow_job_grants;
            reclaim = false;
          }
        }
        if (reclaim) {
          kill(slot.pid, SIGKILL);
          slot.killing = true;
          ++result.hangs;
        }
      }

      int status = 0;
      const pid_t reaped = waitpid(slot.pid, &status, WNOHANG);
      if (reaped == slot.pid) {
        slot.pid = -1;
        slot.killing = false;
        if (pending_of(slot, completed_ids(dir)).empty()) {
          slot.done = true;
        } else {
          ++result.crashes;
          slot.restart_at =
              now + config.retry.delay_seconds(slot.launches);
        }
      }
    }

    // Chaos injection against whoever is running right now.
    if (chaos_fired < chaos_total) {
      const std::size_t mark =
          (chaos_fired + 1) * total_jobs / (chaos_total + 1);
      if (completed.size() >= std::max<std::size_t>(mark, 1)) {
        std::vector<Slot*> running;
        for (Slot& slot : slots) {
          if (slot.active() && slot.pid > 0) running.push_back(&slot);
        }
        if (!running.empty()) {
          Slot& victim = *running[std::uniform_int_distribution<std::size_t>(
              0, running.size() - 1)(chaos_rng)];
          if (chaos_kills_left > 0) {
            --chaos_kills_left;
            kill(victim.pid, SIGKILL);
          } else {
            --chaos_stops_left;
            kill(victim.pid, SIGSTOP);
          }
          ++chaos_fired;
        }
      }
    }

    status.maybe_write(result);
    sleep_seconds(config.poll_interval_seconds);
  }
}

}  // namespace

double RetryPolicy::delay_seconds(std::size_t attempt) const {
  ROBOADS_CHECK(attempt >= 1, "retry attempts are 1-based");
  double delay = base_delay_seconds;
  for (std::size_t i = 1; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= max_delay_seconds) break;
  }
  return std::min(delay, max_delay_seconds);
}

SuperviseResult supervise(const Manifest& manifest, const std::string& dir,
                          const SupervisorConfig& config,
                          const WorkerLauncher& launcher) {
  SuperviseResult result;
  StatusWriter status(manifest, dir, config.status_interval_seconds,
                      config.telemetry_interval_seconds);
  std::mt19937_64 chaos_rng(config.chaos_seed);
  std::size_t chaos_kills_left = config.chaos_kills;
  std::size_t chaos_stops_left = config.chaos_stops;

  // Wave 0: one slot per manifest shard, owning its assigned jobs. Jobs
  // already checkpointed (a --resume, or an earlier wave of a crashed
  // supervisor) are filtered at launch time.
  std::vector<Slot> slots(manifest.shards);
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    slots[s].label = "s" + std::to_string(s);
  }
  for (const ManifestJob& job : manifest.jobs) {
    slots[job.shard].job_ids.push_back(job.id);
  }
  slots.erase(std::remove_if(slots.begin(), slots.end(),
                             [](const Slot& s) { return s.job_ids.empty(); }),
              slots.end());
  run_wave(slots, manifest, dir, config, launcher, result, chaos_kills_left,
           chaos_stops_left, chaos_rng, status);

  // Salvage waves: requeue whatever lost shards stranded onto fresh
  // workers — the pool shrinks to however many are still viable instead of
  // the run failing outright.
  for (std::size_t wave = 1; wave <= config.salvage_waves; ++wave) {
    const std::set<std::string> completed = completed_ids(dir);
    std::vector<std::string> missing;
    for (const ManifestJob& job : manifest.jobs) {
      if (completed.count(job.id) == 0) missing.push_back(job.id);
    }
    if (missing.empty()) break;
    const std::size_t workers =
        std::min<std::size_t>(manifest.shards, missing.size());
    std::vector<Slot> salvage(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      salvage[i].label = "v" + std::to_string(wave) + "-" + std::to_string(i);
    }
    for (std::size_t i = 0; i < missing.size(); ++i) {
      salvage[i % workers].job_ids.push_back(missing[i]);
    }
    result.salvage_workers += workers;
    run_wave(salvage, manifest, dir, config, launcher, result,
             chaos_kills_left, chaos_stops_left, chaos_rng, status);
  }

  const std::set<std::string> completed = completed_ids(dir);
  for (const ManifestJob& job : manifest.jobs) {
    if (completed.count(job.id) == 0) result.missing_ids.push_back(job.id);
  }
  result.complete = result.missing_ids.empty();
  status.force_write(result);
  return result;
}

}  // namespace roboads::shard
