// Versioned JSONL job manifest for sharded campaign runs (docs/ROBUSTNESS.md
// "Sharded campaign runner").
//
// A manifest is the complete, self-contained description of a campaign: one
// header line, then one line per job. Jobs come in three kinds —
//
//   * spec     — an inline serialized ScenarioSpec (the DSL text rides along
//                as a JSON string), flown at the job's mission seed;
//   * library  — a named scenario from scenario/library.h (the legacy
//                Table II / extended / Tamiya batteries), flown at the job's
//                mission seed;
//   * fuzz     — one randomized campaign of a fuzzer sweep, regenerated
//                worker-side from (fuzz_seed, fuzz_index) exactly as
//                scenario::run_fuzzer would, so a sharded sweep covers the
//                identical campaign set as a serial one.
//
// Every job carries a globally unique id and a shard assignment; the id is
// the sole join key between manifest, checkpoints and the merged report, so
// results are independent of which worker (original, retried, or salvage)
// actually flew the job. serialize(parse(serialize(m))) == serialize(m)
// holds byte-for-byte (tests/shard_manifest_test.cc) — numbers are emitted
// with round-trip precision and every field in a fixed order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/fuzz.h"
#include "scenario/spec.h"

namespace roboads::shard {

// Thrown on malformed manifest/checkpoint/report text. Mirrors
// scenario::SpecError: a ManifestError means the *input file* is bad, not
// that the library hit an internal invariant.
class ManifestError : public std::runtime_error {
 public:
  explicit ManifestError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class JobKind { kSpec, kLibrary, kFuzz };

const char* to_string(JobKind kind);

struct ManifestJob {
  std::string id;          // globally unique, e.g. "j00017"
  std::size_t shard = 0;   // owning shard, < Manifest::shards
  JobKind kind = JobKind::kSpec;
  // Replication-group key for merged confidence intervals (e.g. "seed-11"
  // groups one seed's full battery). Empty = ungrouped.
  std::string group;

  // kSpec / kLibrary: mission parameters.
  std::uint64_t seed = 0;      // mission seed (overrides the spec's own)
  std::size_t iterations = 0;  // 0 = the spec's own length
  std::string spec_text;       // kSpec: serialized ScenarioSpec
  std::string scenario;        // kLibrary: library spec name

  // kFuzz: campaign regeneration parameters (scenario::FuzzConfig shape).
  std::uint64_t fuzz_seed = 0;
  std::size_t fuzz_index = 0;
  std::size_t fuzz_iterations = 0;
  std::size_t max_attacks = 0;
  double fault_probability = 0.0;
  std::vector<std::string> platforms;
};

struct Manifest {
  static constexpr int kVersion = 1;
  std::size_t shards = 1;
  std::vector<ManifestJob> jobs;
};

std::string serialize(const Manifest& manifest);

// Parses the JSONL form; throws ManifestError with a line number on
// malformed input, unknown kinds, duplicate or empty ids, or a shard
// assignment outside [0, shards).
Manifest parse_manifest(const std::string& text);

void write_manifest_file(const std::string& path, const Manifest& manifest);
Manifest read_manifest_file(const std::string& path);

// --- Manifest builders (tools/roboads_shard gen-*) ------------------------

// Jobs assigned round-robin: job i goes to shard i % shards, so neighboring
// (usually similar-cost) jobs spread evenly.

// The Table II battery replicated across `seeds` independent seeds: 11
// library jobs per seed, mission seed = seed*1000 + scenario number (the
// bench/seed_robustness convention), group "seed-<seed>".
Manifest table2_manifest(const std::vector<std::uint64_t>& seeds,
                         std::size_t shards, std::size_t iterations = 250);

// The first `n` replication seeds: the classic bench/seed_robustness five
// (11, 23, 37, 59, 71) so small runs stay comparable with historical bench
// output, then continuing in steps of 12.
std::vector<std::uint64_t> default_seed_series(std::size_t n);

// One fuzz job per campaign of the equivalent serial run_fuzzer sweep.
Manifest fuzz_manifest(const scenario::FuzzConfig& config, std::size_t shards);

}  // namespace roboads::shard
