// Per-shard checkpoint files: the crash-resilience substrate of the sharded
// runner (docs/ROBUSTNESS.md "Resume semantics").
//
// A checkpoint is append-only JSONL: one header line, then one JobOutcome
// line per completed job, flushed line-by-line so a SIGKILL can lose at most
// the line being written. A worker that restarts (retry, --resume, salvage)
// first *repairs* its checkpoint — truncating a torn final line left by a
// mid-write kill — then skips every job already recorded and appends from
// there. Outcomes are pure functions of the manifest job, so a job recorded
// by any worker instance is interchangeable with any other recording of it;
// the merger deduplicates by job id across all checkpoint files in a run
// directory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "shard/manifest.h"

namespace roboads::shard {

// One detection-delay record of a scored mission (eval::DelayRecord shape).
struct OutcomeDelay {
  std::string label;
  std::size_t triggered_at = 0;
  std::optional<double> seconds;  // nullopt: never correctly detected
};

// One invariant violation found by a fuzz job (shrunk reproducer included).
struct OutcomeFinding {
  std::string invariant;
  std::string detail;
  std::string spec_text;    // the campaign as generated (serialized)
  std::string shrunk_text;  // greedily minimized reproducer (serialized)
};

// The complete, serializable result of one manifest job — everything the
// merger needs, and nothing nondeterministic: no timing, no worker or shard
// attribution, so a chaos-interrupted run merges byte-identically to an
// uninterrupted serial one.
struct JobOutcome {
  std::string id;
  std::string group;
  std::string name;      // resolved display name (scenario / campaign)
  std::string status;    // "ok" | "failed" | "violation"

  // Mission metrics (kSpec / kLibrary jobs with status "ok").
  std::int64_t sensor_tp = 0, sensor_fp = 0, sensor_tn = 0, sensor_fn = 0;
  std::int64_t actuator_tp = 0, actuator_fp = 0, actuator_tn = 0,
               actuator_fn = 0;
  std::vector<OutcomeDelay> delays;
  std::string sensor_sequence;
  std::string actuator_sequence;

  // Postmortem bundle files this job froze, relative to the run directory.
  std::vector<std::string> bundle_files;

  // status "failed": the mission abort record.
  std::string failure;
  std::size_t failure_step = 0;

  // Fuzz jobs: violations found (status "violation" when non-empty).
  std::vector<OutcomeFinding> findings;
};

// Canonical single-line form, identical bytes wherever the outcome is
// recorded (checkpoint or merged report).
std::string serialize_outcome(const JobOutcome& outcome);
JobOutcome parse_outcome(const std::string& line, std::size_t line_no);

// --- Checkpoint files ------------------------------------------------------

// Writes the header line of a fresh checkpoint file.
void write_checkpoint_header(std::ostream& os);

// Appends one outcome line and flushes.
void append_outcome(std::ostream& os, const JobOutcome& outcome);

// Reads a checkpoint file, tolerating a torn tail: a final line that does
// not parse (mid-write kill) is dropped, and when `repair` is set the file
// is truncated back to the last good line so appends resume cleanly. A torn
// or missing header yields an empty result (the file is rewritten from
// scratch). Unparseable lines *before* the final one are real corruption
// and throw ManifestError.
std::vector<JobOutcome> read_checkpoint_file(const std::string& path,
                                             bool repair);

// All outcomes across every "checkpoint-*.jsonl" in `dir`, deduplicated by
// job id (first recording wins; later recordings of a pure job are
// byte-identical anyway). Never repairs — reading a live run's directory
// must not race its workers.
std::vector<JobOutcome> load_run_outcomes(const std::string& dir);

// Path helpers shared by workers, supervisor and merger.
std::string checkpoint_path(const std::string& dir, const std::string& label);
std::string heartbeat_path(const std::string& dir, const std::string& label);

}  // namespace roboads::shard
