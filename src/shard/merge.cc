#include "shard/merge.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "obs/jsonl.h"
#include "obs/metrics.h"
#include "stats/metrics.h"

namespace roboads::shard {
namespace {

namespace json = roboads::obs::json;

// Per replication group: folded confusion counts and delay samples. Groups
// are the unit of the confidence intervals — e.g. one group per seed in
// bench/seed_robustness, so the CI measures across-seed spread.
struct GroupStats {
  std::string name;
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t violations = 0;
  stats::ConfusionCounts counts;  // sensor + actuator folded together
  std::vector<double> delay_seconds;
  std::size_t missed_delays = 0;  // delays never correctly detected

  bool has_metrics() const { return counts.total() > 0; }
};

void fold(GroupStats& g, const JobOutcome& o) {
  ++g.jobs;
  if (o.status == "ok") ++g.ok;
  if (o.status == "failed") ++g.failed;
  if (o.status == "violation") ++g.violations;
  g.counts.true_positives +=
      static_cast<std::size_t>(o.sensor_tp + o.actuator_tp);
  g.counts.false_positives +=
      static_cast<std::size_t>(o.sensor_fp + o.actuator_fp);
  g.counts.true_negatives +=
      static_cast<std::size_t>(o.sensor_tn + o.actuator_tn);
  g.counts.false_negatives +=
      static_cast<std::size_t>(o.sensor_fn + o.actuator_fn);
  for (const OutcomeDelay& d : o.delays) {
    if (d.seconds.has_value()) {
      g.delay_seconds.push_back(*d.seconds);
    } else {
      ++g.missed_delays;
    }
  }
}

void write_counts(std::ostream& os, const char* key,
                  std::int64_t tp, std::int64_t fp, std::int64_t tn,
                  std::int64_t fn) {
  json::write_field_key(os, key);
  json::write_ints(os, {tp, fp, tn, fn});
}

void write_ci_line(std::ostream& os, const char* metric,
                   const std::vector<double>& samples) {
  const stats::MeanCi95 ci = stats::mean_ci95(samples);
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  json::write_escaped(os, "ci");
  json::write_field_key(os, "metric");
  json::write_escaped(os, metric);
  json::write_field_key(os, "groups");
  json::write_number(os, static_cast<double>(ci.n));
  json::write_field_key(os, "mean");
  json::write_number(os, ci.mean);
  json::write_field_key(os, "stddev");
  json::write_number(os, ci.stddev);
  json::write_field_key(os, "ci95");
  json::write_doubles(os, {ci.lo, ci.hi});
  os << "}\n";
}

}  // namespace

MergedReport merge_outcomes(const Manifest& manifest,
                            std::vector<JobOutcome> outcomes) {
  std::set<std::string> manifest_ids;
  for (const ManifestJob& job : manifest.jobs) manifest_ids.insert(job.id);

  std::map<std::string, const JobOutcome*> by_id;
  for (const JobOutcome& o : outcomes) {
    if (manifest_ids.count(o.id) == 0) {
      throw ManifestError("outcome \"" + o.id + "\" is not in the manifest");
    }
    if (!by_id.emplace(o.id, &o).second) {
      throw ManifestError("duplicate outcome for job \"" + o.id + "\"");
    }
  }

  MergedReport report;
  report.stats.total_jobs = manifest.jobs.size();
  report.stats.completed = by_id.size();

  // Groups in manifest order (first appearance), folding only recorded
  // outcomes. Missing jobs surface in missing_ids, never as fake zeros.
  std::vector<GroupStats> groups;
  std::map<std::string, std::size_t> group_index;
  stats::ConfusionCounts total_counts;
  std::int64_t s_tp = 0, s_fp = 0, s_tn = 0, s_fn = 0;
  std::int64_t a_tp = 0, a_fp = 0, a_tn = 0, a_fn = 0;
  for (const ManifestJob& job : manifest.jobs) {
    const auto it = by_id.find(job.id);
    if (it == by_id.end()) {
      report.stats.missing_ids.push_back(job.id);
      continue;
    }
    const JobOutcome& o = *it->second;
    if (o.status == "ok") ++report.stats.ok;
    if (o.status == "failed") ++report.stats.failed;
    if (o.status == "violation") ++report.stats.violations;
    const auto inserted =
        group_index.emplace(o.group, groups.size());
    if (inserted.second) {
      groups.emplace_back();
      groups.back().name = o.group;
    }
    fold(groups[inserted.first->second], o);
    s_tp += o.sensor_tp; s_fp += o.sensor_fp;
    s_tn += o.sensor_tn; s_fn += o.sensor_fn;
    a_tp += o.actuator_tp; a_fp += o.actuator_fp;
    a_tn += o.actuator_tn; a_fn += o.actuator_fn;
  }
  report.stats.complete = report.stats.missing_ids.empty();
  total_counts.true_positives = static_cast<std::size_t>(s_tp + a_tp);
  total_counts.false_positives = static_cast<std::size_t>(s_fp + a_fp);
  total_counts.true_negatives = static_cast<std::size_t>(s_tn + a_tn);
  total_counts.false_negatives = static_cast<std::size_t>(s_fn + a_fn);

  std::ostringstream os;

  // Header.
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  json::write_escaped(os, "report");
  json::write_field_key(os, "name");
  json::write_escaped(os, "roboads-shard-report");
  json::write_field_key(os, "version");
  json::write_number(os, 1);
  json::write_field_key(os, "jobs");
  json::write_number(os, static_cast<double>(report.stats.total_jobs));
  json::write_field_key(os, "completed");
  json::write_number(os, static_cast<double>(report.stats.completed));
  json::write_field_key(os, "complete");
  os << (report.stats.complete ? "true" : "false");
  os << "}\n";

  // Whole-campaign aggregate.
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  json::write_escaped(os, "aggregate");
  json::write_field_key(os, "ok");
  json::write_number(os, static_cast<double>(report.stats.ok));
  json::write_field_key(os, "failed");
  json::write_number(os, static_cast<double>(report.stats.failed));
  json::write_field_key(os, "violations");
  json::write_number(os, static_cast<double>(report.stats.violations));
  write_counts(os, "sensor", s_tp, s_fp, s_tn, s_fn);
  write_counts(os, "actuator", a_tp, a_fp, a_tn, a_fn);
  json::write_field_key(os, "fpr");
  json::write_number(os, total_counts.false_positive_rate());
  json::write_field_key(os, "fnr");
  json::write_number(os, total_counts.false_negative_rate());
  json::write_field_key(os, "f1");
  json::write_number(os, total_counts.f1());
  os << "}\n";

  // 95% confidence intervals across replication groups (groups carrying
  // mission metrics only — a fuzz group contributes no confusion counts).
  std::vector<double> fprs, fnrs, delays;
  for (const GroupStats& g : groups) {
    if (!g.has_metrics()) continue;
    fprs.push_back(g.counts.false_positive_rate());
    fnrs.push_back(g.counts.false_negative_rate());
    if (!g.delay_seconds.empty()) {
      delays.push_back(stats::mean(g.delay_seconds));
    }
  }
  if (!fprs.empty()) {
    write_ci_line(os, "fpr", fprs);
    write_ci_line(os, "fnr", fnrs);
  }
  if (!delays.empty()) write_ci_line(os, "detection_delay", delays);

  // Telemetry: per-group detection-delay distributions as mergeable
  // histograms (obs::HistogramSnapshot over the shared delay bounds). A
  // deterministic function of the outcomes alone — no wall-clock, no worker
  // identity — so the merged report stays byte-identical to the serial
  // reference with telemetry enabled.
  for (const GroupStats& g : groups) {
    if (g.delay_seconds.empty()) continue;
    obs::HistogramSnapshot hist =
        obs::HistogramSnapshot::with_bounds(obs::default_delay_bounds_s());
    for (const double d : g.delay_seconds) hist.record(d);
    os << '{';
    json::write_field_key(os, "event", /*first=*/true);
    json::write_escaped(os, "telemetry");
    json::write_field_key(os, "metric");
    json::write_escaped(os, "detection_delay_s");
    json::write_field_key(os, "group");
    json::write_escaped(os, g.name);
    json::write_field_key(os, "count");
    json::write_number(os, static_cast<double>(hist.count));
    json::write_field_key(os, "mean");
    json::write_number(os, hist.mean());
    json::write_field_key(os, "stddev");
    json::write_number(os, hist.stddev());
    json::write_field_key(os, "ci95");
    json::write_doubles(os, {hist.mean() - hist.ci95_half_width(),
                             hist.mean() + hist.ci95_half_width()});
    json::write_field_key(os, "p50");
    json::write_number(os, hist.quantile(0.50));
    json::write_field_key(os, "p90");
    json::write_number(os, hist.quantile(0.90));
    json::write_field_key(os, "p99");
    json::write_number(os, hist.quantile(0.99));
    json::write_field_key(os, "max");
    json::write_number(os, hist.max);
    json::write_field_key(os, "hist");
    obs::write_histogram(os, hist);
    os << "}\n";
  }

  // Per-group lines, in manifest first-appearance order.
  for (const GroupStats& g : groups) {
    os << '{';
    json::write_field_key(os, "event", /*first=*/true);
    json::write_escaped(os, "group");
    json::write_field_key(os, "group");
    json::write_escaped(os, g.name);
    json::write_field_key(os, "jobs");
    json::write_number(os, static_cast<double>(g.jobs));
    json::write_field_key(os, "ok");
    json::write_number(os, static_cast<double>(g.ok));
    json::write_field_key(os, "failed");
    json::write_number(os, static_cast<double>(g.failed));
    json::write_field_key(os, "violations");
    json::write_number(os, static_cast<double>(g.violations));
    if (g.has_metrics()) {
      json::write_field_key(os, "fpr");
      json::write_number(os, g.counts.false_positive_rate());
      json::write_field_key(os, "fnr");
      json::write_number(os, g.counts.false_negative_rate());
      json::write_field_key(os, "detection_delay");
      if (g.delay_seconds.empty()) {
        os << "null";
      } else {
        json::write_number(os, stats::mean(g.delay_seconds));
      }
      json::write_field_key(os, "missed_delays");
      json::write_number(os, static_cast<double>(g.missed_delays));
    }
    os << "}\n";
  }

  // Partial coverage is reported, not hidden.
  if (!report.stats.complete) {
    os << '{';
    json::write_field_key(os, "event", /*first=*/true);
    json::write_escaped(os, "missing");
    json::write_field_key(os, "count");
    json::write_number(os,
                       static_cast<double>(report.stats.missing_ids.size()));
    json::write_field_key(os, "ids");
    json::write_strings(os, report.stats.missing_ids);
    os << "}\n";
  }

  // Every outcome, canonically serialized in job-id order. This is the part
  // the chaos test diffs byte-for-byte against the serial reference.
  std::sort(outcomes.begin(), outcomes.end(),
            [](const JobOutcome& a, const JobOutcome& b) { return a.id < b.id; });
  for (const JobOutcome& o : outcomes) {
    os << serialize_outcome(o) << '\n';
  }

  report.text = os.str();
  return report;
}

MergedReport merge_run(const Manifest& manifest, const std::string& dir) {
  return merge_outcomes(manifest, load_run_outcomes(dir));
}

}  // namespace roboads::shard
