// Worker liveness via heartbeat files. A worker rewrites its heartbeat
// atomically (write to a temp file, rename over the target) once per job and
// on startup; the supervising watchdog reads the file's mtime age. A worker
// that stops beating — hung, SIGSTOPped, or wedged in a runaway mission —
// looks exactly like one whose process died, and is reclaimed the same way
// (SIGKILL, then retry). File mtimes rather than pipes/sockets keep the
// protocol crash-proof: a heartbeat survives its writer, and a fresh worker
// instance simply overwrites it.
//
// The payload is a single JSON object carrying the worker's progress: the
// last-completed job id and completion time plus the job currently in
// flight. The watchdog uses it to tell a *slow* job (progress this launch,
// stuck on one long mission) from a *hung* worker (no progress at all) and
// grants the former one grace period before SIGKILLing
// (docs/OBSERVABILITY.md "Live campaign telemetry"); `roboads_shard watch`
// renders it per worker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace roboads::shard {

struct Heartbeat {
  std::string label;           // worker label (s0, v1-2)
  std::uint64_t jobs_done = 0; // jobs completed by THIS worker instance
  std::string last_job;        // id of the last completed job ("" = none)
  double last_job_unix_time = 0.0;  // CLOCK_REALTIME seconds of completion
  std::string current_job;     // id of the job in flight ("" = idle)
};

// Atomically (re)writes the heartbeat file. The watchdog reads the mtime
// for liveness; the JSON payload is advisory.
void write_heartbeat(const std::string& path, const Heartbeat& beat);

// Parses the heartbeat payload. nullopt when the file is missing or the
// payload is unparseable (a legacy plain-text beat, a torn write) — the
// watchdog then falls back to mtime-only behavior.
std::optional<Heartbeat> read_heartbeat(const std::string& path);

// Age of the heartbeat in seconds, or nullopt when the file does not exist
// (worker not started yet). Uses nanosecond mtime, so sub-second watchdog
// timeouts are meaningful in tests.
std::optional<double> heartbeat_age_seconds(const std::string& path);

// CLOCK_REALTIME now, in fractional seconds (shared by heartbeat payloads
// and telemetry records).
double unix_now_seconds();

}  // namespace roboads::shard
