// Worker liveness via heartbeat files. A worker touches its heartbeat
// atomically (write to a temp file, rename over the target) once per job and
// on startup; the supervising watchdog reads the file's mtime age. A worker
// that stops beating — hung, SIGSTOPped, or wedged in a runaway mission —
// looks exactly like one whose process died, and is reclaimed the same way
// (SIGKILL, then retry). File mtimes rather than pipes/sockets keep the
// protocol crash-proof: a heartbeat survives its writer, and a fresh worker
// instance simply overwrites it.
#pragma once

#include <optional>
#include <string>

namespace roboads::shard {

// Atomically (re)writes the heartbeat file; `payload` is informational
// (worker label / last job id), the watchdog only reads the mtime.
void write_heartbeat(const std::string& path, const std::string& payload);

// Age of the heartbeat in seconds, or nullopt when the file does not exist
// (worker not started yet). Uses nanosecond mtime, so sub-second watchdog
// timeouts are meaningful in tests.
std::optional<double> heartbeat_age_seconds(const std::string& path);

}  // namespace roboads::shard
