// Executes one manifest job to its JobOutcome. This is the worker's inner
// loop, but it is deliberately process-agnostic: the same function runs
// inside sharded workers, the serial reference runner, and tests, and its
// result is a pure function of the job — no timing, no worker identity —
// which is what makes retried/salvaged/chaos-interrupted campaigns merge
// byte-identically to a serial run.
#pragma once

#include <string>

#include "obs/obs.h"
#include "shard/checkpoint.h"
#include "shard/manifest.h"

namespace roboads::shard {

struct ExecConfig {
  // Run directory; postmortem bundles land under <run_dir>/bundles/ and are
  // referenced run-dir-relative in the outcome. Empty = no bundles.
  std::string run_dir;
  bool record_bundles = false;
  // Fuzz jobs: shrink budget per finding (scenario::FuzzConfig semantics).
  std::size_t shrink_budget = 120;
  // Observability plumbed into every job this worker executes (telemetry
  // latency histograms). Instrumentation records timings only — it can
  // never alter the JobOutcome, which keeps merged≡serial byte-identity.
  obs::Instruments instruments;
};

// Never throws for job-level problems: a crashing mission, an unknown
// library scenario or a malformed inline spec all become a status "failed"
// outcome, so one bad job costs one job, not a shard.
JobOutcome execute_job(const ManifestJob& job, const ExecConfig& config);

}  // namespace roboads::shard
