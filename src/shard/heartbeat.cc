#include "shard/heartbeat.h"

#include <sys/stat.h>
#include <time.h>

#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace roboads::shard {

void write_heartbeat(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    ROBOADS_CHECK(static_cast<bool>(os), "cannot write heartbeat " + tmp);
    os << payload << '\n';
    os.flush();
  }
  ROBOADS_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot publish heartbeat " + path);
}

std::optional<double> heartbeat_age_seconds(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  struct timespec now;
  ROBOADS_CHECK(clock_gettime(CLOCK_REALTIME, &now) == 0,
                "clock_gettime failed");
  const double age =
      static_cast<double>(now.tv_sec - st.st_mtim.tv_sec) +
      1e-9 * static_cast<double>(now.tv_nsec - st.st_mtim.tv_nsec);
  return age < 0.0 ? 0.0 : age;
}

}  // namespace roboads::shard
