#include "shard/heartbeat.h"

#include <sys/stat.h>
#include <time.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/jsonl.h"

namespace roboads::shard {

namespace json = obs::json;

void write_heartbeat(const std::string& path, const Heartbeat& beat) {
  std::ostringstream line;
  line << '{';
  json::write_field_key(line, "label", /*first=*/true);
  json::write_escaped(line, beat.label);
  json::write_field_key(line, "jobs_done");
  line << beat.jobs_done;
  json::write_field_key(line, "last_job");
  json::write_escaped(line, beat.last_job);
  json::write_field_key(line, "last_job_unix_time");
  json::write_number(line, beat.last_job_unix_time);
  json::write_field_key(line, "current_job");
  json::write_escaped(line, beat.current_job);
  line << '}';

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    ROBOADS_CHECK(static_cast<bool>(os), "cannot write heartbeat " + tmp);
    os << line.str() << '\n';
    os.flush();
  }
  ROBOADS_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot publish heartbeat " + path);
}

std::optional<Heartbeat> read_heartbeat(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string line;
  if (!std::getline(is, line)) return std::nullopt;
  try {
    const std::string context = "heartbeat " + path;
    json::Fields f(json::parse_object_line(line, context), context);
    Heartbeat beat;
    beat.label = f.string("label");
    beat.jobs_done = static_cast<std::uint64_t>(f.integer("jobs_done"));
    beat.last_job = f.string("last_job");
    beat.last_job_unix_time = f.number("last_job_unix_time");
    beat.current_job = f.string("current_job");
    return beat;
  } catch (const std::exception&) {
    // Legacy plain-text payload or a beat torn mid-rename publish — the
    // mtime is still meaningful, the payload just is not.
    return std::nullopt;
  }
}

std::optional<double> heartbeat_age_seconds(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return std::nullopt;
  struct timespec now;
  ROBOADS_CHECK(clock_gettime(CLOCK_REALTIME, &now) == 0,
                "clock_gettime failed");
  const double age =
      static_cast<double>(now.tv_sec - st.st_mtim.tv_sec) +
      1e-9 * static_cast<double>(now.tv_nsec - st.st_mtim.tv_nsec);
  return age < 0.0 ? 0.0 : age;
}

double unix_now_seconds() {
  struct timespec now;
  ROBOADS_CHECK(clock_gettime(CLOCK_REALTIME, &now) == 0,
                "clock_gettime failed");
  return static_cast<double>(now.tv_sec) +
         1e-9 * static_cast<double>(now.tv_nsec);
}

}  // namespace roboads::shard
