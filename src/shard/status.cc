#include "shard/status.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/jsonl.h"
#include "obs/report.h"
#include "shard/checkpoint.h"
#include "shard/heartbeat.h"
#include "shard/telemetry.h"

namespace roboads::shard {
namespace {

namespace json = obs::json;
namespace fs = std::filesystem;

// Floor and cadence multiple behind live_heartbeat_threshold_seconds: a
// worker is live while its heartbeat is younger than
// max(floor, multiple × configured interval). The floor keeps fast cadences
// from declaring death on a single delayed beat; the multiple keeps slow
// cadences (interval ≥ 10 s) from being misclassified as dead between two
// perfectly healthy beats.
constexpr double kLiveHeartbeatFloorSeconds = 10.0;
constexpr double kLiveHeartbeatIntervalMultiple = 3.0;

// Strips "<prefix><label><suffix>" filenames down to the label; empty when
// the shape does not match.
std::string label_of(const std::string& name, const std::string& prefix,
                     const std::string& suffix) {
  if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + suffix.size())
    return {};
  if (!suffix.empty() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return {};
  return name.substr(prefix.size(),
                     name.size() - prefix.size() - suffix.size());
}

void write_worker(std::ostream& os, const WorkerStatus& w) {
  os << '{';
  json::write_field_key(os, "label", /*first=*/true);
  json::write_escaped(os, w.label);
  json::write_field_key(os, "heartbeat_age_s");
  json::write_number(os, w.heartbeat_age_seconds);
  json::write_field_key(os, "jobs_done");
  os << w.jobs_done;
  json::write_field_key(os, "instance_jobs_done");
  os << w.instance_jobs_done;
  json::write_field_key(os, "last_job");
  json::write_escaped(os, w.last_job);
  json::write_field_key(os, "last_job_unix_time");
  json::write_number(os, w.last_job_unix_time);
  json::write_field_key(os, "current_job");
  json::write_escaped(os, w.current_job);
  json::write_field_key(os, "rate_jobs_per_s");
  json::write_number(os, w.rate_jobs_per_second);
  json::write_field_key(os, "max_rss_kb");
  json::write_number(os, w.max_rss_kb);
  os << '}';
}

WorkerStatus parse_worker(const json::Fields& f) {
  WorkerStatus w;
  w.label = f.string("label");
  w.heartbeat_age_seconds = f.number("heartbeat_age_s");
  w.jobs_done = static_cast<std::uint64_t>(f.integer("jobs_done"));
  w.instance_jobs_done =
      static_cast<std::uint64_t>(f.integer("instance_jobs_done"));
  w.last_job = f.string("last_job");
  w.last_job_unix_time = f.number("last_job_unix_time");
  w.current_job = f.string("current_job");
  w.rate_jobs_per_second = f.number("rate_jobs_per_s");
  w.max_rss_kb = f.number("max_rss_kb");
  return w;
}

std::string fmt_eta(double seconds) {
  if (seconds < 0.0) return "--:--";
  const int total = static_cast<int>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof(buf), "%d:%02d:%02d", total / 3600,
                  (total / 60) % 60, total % 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%02d:%02d", total / 60, total % 60);
  }
  return buf;
}

}  // namespace

double live_heartbeat_threshold_seconds(double heartbeat_interval_seconds) {
  if (heartbeat_interval_seconds <= 0.0) return kLiveHeartbeatFloorSeconds;
  return std::max(kLiveHeartbeatFloorSeconds,
                  kLiveHeartbeatIntervalMultiple * heartbeat_interval_seconds);
}

RunStatus build_status(const Manifest& manifest, const std::string& dir,
                       const SupervisionCounters& counters,
                       double elapsed_seconds,
                       double heartbeat_interval_seconds) {
  RunStatus status;
  status.unix_time = unix_now_seconds();
  status.total_jobs = manifest.jobs.size();
  status.counters = counters;
  status.elapsed_seconds = elapsed_seconds;

  // Progress: the deduplicated checkpoint outcomes, same loader the merge
  // uses — watch and the final report can never disagree about "done".
  for (const JobOutcome& o : load_run_outcomes(dir)) {
    ++status.completed;
    if (o.status == "ok") ++status.ok;
    if (o.status == "failed") ++status.failed;
    if (o.status == "violation") ++status.violations;
  }
  status.complete =
      status.total_jobs > 0 && status.completed >= status.total_jobs;
  status.progress =
      status.total_jobs == 0
          ? 0.0
          : static_cast<double>(status.completed) /
                static_cast<double>(status.total_jobs);

  // Worker rows: any label that left a checkpoint, heartbeat, or telemetry
  // stream behind.
  std::map<std::string, WorkerStatus> workers;
  if (fs::exists(dir)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)
        continue;
      std::string label = label_of(name, "checkpoint-", ".jsonl");
      if (label.empty()) label = label_of(name, "telemetry-", ".jsonl");
      if (label.empty()) label = label_of(name, "heartbeat-", "");
      if (label.empty()) continue;
      workers[label].label = label;
    }
  }

  for (auto& [label, w] : workers) {
    w.jobs_done =
        read_checkpoint_file(checkpoint_path(dir, label), /*repair=*/false)
            .size();
    const std::string beat_path = heartbeat_path(dir, label);
    if (const std::optional<double> age = heartbeat_age_seconds(beat_path)) {
      w.heartbeat_age_seconds = *age;
    }
    if (const std::optional<Heartbeat> beat = read_heartbeat(beat_path)) {
      w.instance_jobs_done = beat->jobs_done;
      w.last_job = beat->last_job;
      w.last_job_unix_time = beat->last_job_unix_time;
      w.current_job = beat->current_job;
    }

    // Telemetry: the last record of every instance merges into the fleet
    // latency histogram (instances are retries of the same label — their
    // samples are disjoint); the newest instance's record carries the
    // current rate and rss.
    std::map<std::int64_t, const TelemetryRecord*> last_of_instance;
    const std::vector<TelemetryRecord> records =
        read_telemetry_file(telemetry_path(dir, label), /*repair=*/false);
    for (const TelemetryRecord& r : records) {
      last_of_instance[r.instance] = &r;
    }
    const TelemetryRecord* newest = nullptr;
    for (const auto& [instance, record] : last_of_instance) {
      status.step_latency.merge(record->step_latency);
      if (newest == nullptr || record->unix_time > newest->unix_time) {
        newest = record;
      }
    }
    if (newest != nullptr) {
      w.rate_jobs_per_second = newest->jobs_per_second();
      w.max_rss_kb = newest->max_rss_kb;
    }

    const bool live =
        w.heartbeat_age_seconds >= 0.0 &&
        w.heartbeat_age_seconds <
            live_heartbeat_threshold_seconds(heartbeat_interval_seconds);
    if (live) status.rate_jobs_per_second += w.rate_jobs_per_second;
  }

  if (!status.complete && status.rate_jobs_per_second > 0.0) {
    status.eta_seconds =
        static_cast<double>(status.total_jobs - status.completed) /
        status.rate_jobs_per_second;
  }

  status.workers.reserve(workers.size());
  for (auto& [label, w] : workers) status.workers.push_back(std::move(w));
  return status;
}

std::string serialize_status(const RunStatus& status) {
  std::ostringstream os;
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"status\"";
  json::write_field_key(os, "name");
  os << "\"roboads-shard-status\"";
  json::write_field_key(os, "version");
  os << 1;
  json::write_field_key(os, "unix_time");
  json::write_number(os, status.unix_time);
  json::write_field_key(os, "jobs");
  os << status.total_jobs;
  json::write_field_key(os, "completed");
  os << status.completed;
  json::write_field_key(os, "ok");
  os << status.ok;
  json::write_field_key(os, "failed");
  os << status.failed;
  json::write_field_key(os, "violations");
  os << status.violations;
  json::write_field_key(os, "complete");
  os << (status.complete ? "true" : "false");
  json::write_field_key(os, "progress");
  json::write_number(os, status.progress);
  json::write_field_key(os, "elapsed_s");
  json::write_number(os, status.elapsed_seconds);
  json::write_field_key(os, "rate_jobs_per_s");
  json::write_number(os, status.rate_jobs_per_second);
  json::write_field_key(os, "eta_s");
  json::write_number(os, status.eta_seconds);
  json::write_field_key(os, "launches");
  os << status.counters.launches;
  json::write_field_key(os, "crashes");
  os << status.counters.crashes;
  json::write_field_key(os, "hangs");
  os << status.counters.hangs;
  json::write_field_key(os, "lost_shards");
  os << status.counters.lost_shards;
  json::write_field_key(os, "salvage_workers");
  os << status.counters.salvage_workers;
  json::write_field_key(os, "slow_job_grants");
  os << status.counters.slow_job_grants;
  json::write_field_key(os, "step_latency");
  obs::write_histogram(os, status.step_latency);
  json::write_field_key(os, "workers");
  os << '[';
  for (std::size_t i = 0; i < status.workers.size(); ++i) {
    if (i > 0) os << ',';
    write_worker(os, status.workers[i]);
  }
  os << ']';
  os << '}';
  return os.str();
}

RunStatus parse_status(const std::string& line) {
  const std::string context = "status";
  json::Fields f(json::parse_object_line(line, context), context);
  if (f.string("event") != "status" ||
      f.string("name") != "roboads-shard-status" ||
      f.integer("version") != 1) {
    throw CheckError("not a roboads-shard-status v1 snapshot");
  }
  RunStatus status;
  status.unix_time = f.number("unix_time");
  status.total_jobs = static_cast<std::uint64_t>(f.integer("jobs"));
  status.completed = static_cast<std::uint64_t>(f.integer("completed"));
  status.ok = static_cast<std::uint64_t>(f.integer("ok"));
  status.failed = static_cast<std::uint64_t>(f.integer("failed"));
  status.violations = static_cast<std::uint64_t>(f.integer("violations"));
  status.complete = f.boolean("complete");
  status.progress = f.number("progress");
  status.elapsed_seconds = f.number("elapsed_s");
  status.rate_jobs_per_second = f.number("rate_jobs_per_s");
  status.eta_seconds = f.number("eta_s");
  status.counters.launches = static_cast<std::uint64_t>(f.integer("launches"));
  status.counters.crashes = static_cast<std::uint64_t>(f.integer("crashes"));
  status.counters.hangs = static_cast<std::uint64_t>(f.integer("hangs"));
  status.counters.lost_shards =
      static_cast<std::uint64_t>(f.integer("lost_shards"));
  status.counters.salvage_workers =
      static_cast<std::uint64_t>(f.integer("salvage_workers"));
  status.counters.slow_job_grants =
      static_cast<std::uint64_t>(f.integer("slow_job_grants"));
  status.step_latency = obs::parse_histogram(json::Fields(
      f.at("step_latency").members, "status field 'step_latency'"));
  for (const json::Fields& w : f.objects("workers")) {
    status.workers.push_back(parse_worker(w));
  }
  return status;
}

std::string status_path(const std::string& dir) {
  return dir + "/status.json";
}

void write_status_file(const std::string& path, const RunStatus& status) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
    ROBOADS_CHECK(static_cast<bool>(os), "cannot write status " + tmp);
    os << serialize_status(status) << '\n';
    os.flush();
    ROBOADS_CHECK(static_cast<bool>(os), "write failed for " + tmp);
  }
  ROBOADS_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot publish status " + path);
}

RunStatus read_status_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw CheckError(path + ": no status snapshot (is a supervisor running "
                     "with telemetry on? pass --manifest= to compute one "
                     "from the checkpoints instead)");
  }
  std::string line;
  ROBOADS_CHECK(static_cast<bool>(std::getline(is, line)),
                path + ": empty status snapshot");
  return parse_status(line);
}

std::string render_status(const RunStatus& status) {
  std::ostringstream os;
  char line[256];

  os << "== roboads_shard watch ========================================\n";
  const int bar = static_cast<int>(status.progress * 40.0 + 0.5);
  std::snprintf(line, sizeof(line),
                "jobs     %llu/%llu (%5.1f%%) [%-40.*s]%s\n",
                static_cast<unsigned long long>(status.completed),
                static_cast<unsigned long long>(status.total_jobs),
                100.0 * status.progress, bar,
                "########################################",
                status.complete ? " complete" : "");
  os << line;
  std::snprintf(line, sizeof(line),
                "results  ok %llu  failed %llu  violations %llu\n",
                static_cast<unsigned long long>(status.ok),
                static_cast<unsigned long long>(status.failed),
                static_cast<unsigned long long>(status.violations));
  os << line;
  std::snprintf(line, sizeof(line),
                "rate     %.2f jobs/s   eta %s   elapsed %s\n",
                status.rate_jobs_per_second,
                fmt_eta(status.eta_seconds).c_str(),
                fmt_eta(status.elapsed_seconds).c_str());
  os << line;
  const SupervisionCounters& c = status.counters;
  std::snprintf(line, sizeof(line),
                "fleet    launches %llu  crashes %llu  hangs %llu  lost %llu"
                "  salvage %llu  slow-grants %llu\n",
                static_cast<unsigned long long>(c.launches),
                static_cast<unsigned long long>(c.crashes),
                static_cast<unsigned long long>(c.hangs),
                static_cast<unsigned long long>(c.lost_shards),
                static_cast<unsigned long long>(c.salvage_workers),
                static_cast<unsigned long long>(c.slow_job_grants));
  os << line;
  if (status.step_latency.count > 0) {
    const obs::HistogramSnapshot& h = status.step_latency;
    std::snprintf(line, sizeof(line),
                  "step     p50<=%s p95<=%s p99<=%s max=%s (n=%llu)\n",
                  obs::format_duration_ns(h.quantile(0.50)).c_str(),
                  obs::format_duration_ns(h.quantile(0.95)).c_str(),
                  obs::format_duration_ns(h.quantile(0.99)).c_str(),
                  obs::format_duration_ns(h.max).c_str(),
                  static_cast<unsigned long long>(h.count));
    os << line;
  }

  os << "-- workers --\n";
  if (status.workers.empty()) os << "  (none yet)\n";
  for (const WorkerStatus& w : status.workers) {
    std::string beat = "   -  ";
    if (w.heartbeat_age_seconds >= 0.0) {
      char b[32];
      std::snprintf(b, sizeof(b), "%5.1fs", w.heartbeat_age_seconds);
      beat = b;
    }
    std::snprintf(line, sizeof(line),
                  "  %-8s beat %s  done %-5llu (run %llu)  cur %-12s "
                  "rate %5.2f/s  rss %.0fMB\n",
                  w.label.c_str(), beat.c_str(),
                  static_cast<unsigned long long>(w.jobs_done),
                  static_cast<unsigned long long>(w.instance_jobs_done),
                  w.current_job.empty() ? "-" : w.current_job.c_str(),
                  w.rate_jobs_per_second, w.max_rss_kb / 1024.0);
    os << line;
  }
  os << "===============================================================\n";
  return os.str();
}

}  // namespace roboads::shard
