// Worker-pool supervision for sharded campaign runs: spawn one worker
// process per shard, watch heartbeats, SIGKILL the hung, restart the dead
// with exponential backoff, and when a shard is lost for good, shrink the
// pool and requeue its remaining jobs onto salvage workers. The supervisor
// never computes results itself — completion is judged purely from the
// checkpoint files the workers append — so killing the *supervisor* loses
// nothing either: a rerun with --resume picks up from the checkpoints.
//
// Chaos hooks (kill/stop random workers mid-run) live here too, so the
// chaos test and ci.sh shard-smoke exercise the identical supervision code
// paths they are meant to prove out (tests/shard_chaos_test.cc asserts the
// merged results are bit-identical to an unkilled serial run).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "shard/manifest.h"

namespace roboads::shard {

// Bounded exponential backoff between restart attempts of one worker slot.
// Pure, so the schedule is unit-testable (tests/shard_supervise_test.cc).
struct RetryPolicy {
  std::size_t max_retries = 3;        // restarts after the first launch
  double base_delay_seconds = 0.25;   // delay before restart #1
  double multiplier = 2.0;
  double max_delay_seconds = 5.0;

  // Delay before restart `attempt` (1-based): base * multiplier^(attempt-1),
  // capped at max_delay_seconds.
  double delay_seconds(std::size_t attempt) const;
};

struct SupervisorConfig {
  RetryPolicy retry;
  double heartbeat_timeout_seconds = 30.0;
  double poll_interval_seconds = 0.05;
  // Requeue waves after shards are lost permanently (0 = report partial
  // coverage immediately).
  std::size_t salvage_waves = 1;

  // Slow-job grace: when a worker times out but its structured heartbeat
  // shows it completed jobs since launch, the watchdog assumes "slow job"
  // rather than "hung job" and grants one extra window of this many seconds
  // (once per launch) before SIGKILLing. < 0 means "same as
  // heartbeat_timeout_seconds"; 0 disables the grace entirely.
  double slow_job_grace_seconds = -1.0;

  // How often the supervisor publishes the run's status.json snapshot
  // (shard/status.h) for `roboads_shard watch`. <= 0 disables publication.
  double status_interval_seconds = 1.0;

  // The heartbeat/telemetry cadence the workers were launched with
  // (--telemetry-interval). Published snapshots derive the worker-liveness
  // threshold from it (shard/status.h live_heartbeat_threshold_seconds), so
  // slow-cadence fleets are not misclassified as dead and dropped from the
  // rate/ETA. <= 0 falls back to the threshold floor.
  double telemetry_interval_seconds = 5.0;

  // Chaos injection: SIGKILL / SIGSTOP this many randomly chosen running
  // workers, one each at staggered points of the campaign. A stopped worker
  // keeps its process slot but stops heartbeating, so it exercises the
  // hang-detection path end to end.
  std::size_t chaos_kills = 0;
  std::size_t chaos_stops = 0;
  std::uint64_t chaos_seed = 1;
};

// The argv of one worker process. args[0] is the program to exec.
struct WorkerCommand {
  std::vector<std::string> args;
};

// Builds the command for a worker instance: `label` names its checkpoint
// and heartbeat files, `job_ids` the exact jobs it must complete (already
// filtered of completed work by the supervisor).
using WorkerLauncher = std::function<WorkerCommand(
    const std::string& label, const std::vector<std::string>& job_ids)>;

struct SuperviseResult {
  bool complete = false;             // every manifest job has an outcome
  std::size_t launches = 0;          // worker processes spawned in total
  std::size_t crashes = 0;           // workers that died before finishing
  std::size_t hangs = 0;             // workers the watchdog had to SIGKILL
  std::size_t lost_shards = 0;       // slots that exhausted their retries
  std::size_t salvage_workers = 0;   // extra workers spawned by requeue waves
  std::size_t slow_job_grants = 0;   // watchdog grace periods granted
  std::vector<std::string> missing_ids;  // jobs with no outcome (partial)
};

// Runs the manifest's jobs to completion (or partial coverage) under `dir`.
// Jobs already recorded in the directory's checkpoints are skipped — that
// is both `--resume` and the retry path; pass a fresh directory for a fresh
// run. The launcher is invoked for shard workers ("s<shard>") and salvage
// workers ("v<wave>-<i>").
SuperviseResult supervise(const Manifest& manifest, const std::string& dir,
                          const SupervisorConfig& config,
                          const WorkerLauncher& launcher);

}  // namespace roboads::shard
