#include "shard/telemetry.h"

#include <sys/resource.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>

#include "obs/json.h"
#include "obs/jsonl.h"
#include "obs/timer.h"
#include "shard/heartbeat.h"
#include "shard/manifest.h"

namespace roboads::shard {
namespace {

namespace json = obs::json;
namespace fs = std::filesystem;

constexpr char kTelemetryName[] = "roboads-shard-telemetry";

void write_telemetry_header(std::ostream& os) {
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"telemetry-header\"";
  json::write_field_key(os, "name");
  os << '"' << kTelemetryName << '"';
  json::write_field_key(os, "version");
  os << 1;
  os << "}\n";
  os.flush();
}

double monotonic_seconds() { return 1e-9 * obs::monotonic_ns(); }

}  // namespace

std::string serialize_telemetry(const TelemetryRecord& record) {
  std::ostringstream os;
  os << '{';
  json::write_field_key(os, "event", /*first=*/true);
  os << "\"telemetry\"";
  json::write_field_key(os, "label");
  json::write_escaped(os, record.label);
  json::write_field_key(os, "instance");
  os << record.instance;
  json::write_field_key(os, "seq");
  os << record.seq;
  json::write_field_key(os, "unix_time");
  json::write_number(os, record.unix_time);
  json::write_field_key(os, "elapsed_s");
  json::write_number(os, record.elapsed_seconds);
  json::write_field_key(os, "jobs_assigned");
  os << record.jobs_assigned;
  json::write_field_key(os, "jobs_done");
  os << record.jobs_done;
  json::write_field_key(os, "groups");
  os << '[';
  bool first_group = true;
  for (const auto& [name, tally] : record.groups) {
    if (!first_group) os << ',';
    first_group = false;
    os << '{';
    json::write_field_key(os, "group", /*first=*/true);
    json::write_escaped(os, name);
    json::write_field_key(os, "done");
    os << tally.done;
    json::write_field_key(os, "ok");
    os << tally.ok;
    json::write_field_key(os, "failed");
    os << tally.failed;
    json::write_field_key(os, "violations");
    os << tally.violations;
    json::write_field_key(os, "alarms");
    os << tally.alarms;
    os << '}';
  }
  os << ']';
  json::write_field_key(os, "step_latency");
  obs::write_histogram(os, record.step_latency);
  json::write_field_key(os, "max_rss_kb");
  json::write_number(os, record.max_rss_kb);
  json::write_field_key(os, "user_s");
  json::write_number(os, record.user_seconds);
  json::write_field_key(os, "system_s");
  json::write_number(os, record.system_seconds);
  os << '}';
  return os.str();
}

TelemetryRecord parse_telemetry(const std::string& line, std::size_t line_no) {
  const std::string context = "telemetry line " + std::to_string(line_no);
  json::Fields f(json::parse_object_line(line, context), context);
  if (f.string("event") != "telemetry") {
    throw ManifestError(context + ": expected a telemetry line");
  }
  TelemetryRecord out;
  out.label = f.string("label");
  out.instance = f.integer("instance");
  out.seq = static_cast<std::uint64_t>(f.integer("seq"));
  out.unix_time = f.number("unix_time");
  out.elapsed_seconds = f.number("elapsed_s");
  out.jobs_assigned = static_cast<std::uint64_t>(f.integer("jobs_assigned"));
  out.jobs_done = static_cast<std::uint64_t>(f.integer("jobs_done"));
  for (const json::Fields& g : f.objects("groups")) {
    TelemetryGroupTally tally;
    tally.done = static_cast<std::uint64_t>(g.integer("done"));
    tally.ok = static_cast<std::uint64_t>(g.integer("ok"));
    tally.failed = static_cast<std::uint64_t>(g.integer("failed"));
    tally.violations = static_cast<std::uint64_t>(g.integer("violations"));
    tally.alarms = static_cast<std::uint64_t>(g.integer("alarms"));
    out.groups.emplace(g.string("group"), tally);
  }
  out.step_latency = obs::parse_histogram(
      json::Fields(f.at("step_latency").members,
                   context + " field 'step_latency'"));
  out.max_rss_kb = f.number("max_rss_kb");
  out.user_seconds = f.number("user_s");
  out.system_seconds = f.number("system_s");
  return out;
}

std::vector<TelemetryRecord> read_telemetry_file(const std::string& path,
                                                 bool repair) {
  std::vector<TelemetryRecord> records;
  bool saw_header = false;
  json::read_jsonl_tail_tolerant(
      path,
      [&](const std::string& line, std::size_t line_no) {
        if (!saw_header) {
          const std::string context =
              "telemetry line " + std::to_string(line_no);
          json::Fields f(json::parse_object_line(line, context), context);
          if (f.string("event") != "telemetry-header" ||
              f.string("name") != kTelemetryName ||
              f.integer("version") != 1) {
            throw ManifestError(context + ": not a telemetry header");
          }
          saw_header = true;
        } else {
          records.push_back(parse_telemetry(line, line_no));
        }
      },
      repair,
      [&](const std::exception& e) {
        throw ManifestError(path + ": corrupt telemetry (" + e.what() + ")");
      });
  return records;
}

std::string telemetry_path(const std::string& dir, const std::string& label) {
  return dir + "/telemetry-" + label + ".jsonl";
}

TelemetryStream::TelemetryStream(const std::string& dir,
                                 const std::string& label,
                                 double interval_seconds,
                                 obs::MetricsRegistry* metrics)
    : interval_seconds_(interval_seconds), metrics_(metrics) {
  if (interval_seconds_ <= 0.0) return;
  const std::string path = telemetry_path(dir, label);
  // Repair our own torn tail (a previous instance killed mid-append), like
  // the worker does for its checkpoint. Sibling streams are left alone.
  read_telemetry_file(path, /*repair=*/true);
  const bool fresh = !fs::exists(path) || fs::file_size(path) == 0;
  os_.open(path, fresh ? std::ios::binary : std::ios::binary | std::ios::app);
  if (!os_) return;  // telemetry is best-effort: never fail the worker
  if (fresh) write_telemetry_header(os_);
  enabled_ = true;
  started_monotonic_ = monotonic_seconds();
  last_append_monotonic_ = started_monotonic_;
  record_.label = label;
  record_.instance = static_cast<std::int64_t>(getpid());
}

void TelemetryStream::set_jobs_assigned(std::uint64_t n) {
  record_.jobs_assigned = n;
}

void TelemetryStream::job_finished(const JobOutcome& outcome) {
  if (!enabled_) return;
  ++record_.jobs_done;
  TelemetryGroupTally& tally = record_.groups[outcome.group];
  ++tally.done;
  if (outcome.status == "ok") ++tally.ok;
  if (outcome.status == "failed") ++tally.failed;
  if (outcome.status == "violation") ++tally.violations;
  if (outcome.sensor_tp + outcome.sensor_fp + outcome.actuator_tp +
          outcome.actuator_fp >
      0) {
    ++tally.alarms;
  }
  if (monotonic_seconds() - last_append_monotonic_ >= interval_seconds_) {
    append_record();
  }
}

void TelemetryStream::flush() {
  if (!enabled_) return;
  append_record();
}

void TelemetryStream::append_record() {
  const double now = monotonic_seconds();
  record_.unix_time = unix_now_seconds();
  record_.elapsed_seconds = now - started_monotonic_;
  if (metrics_ != nullptr) {
    record_.step_latency =
        metrics_->histogram("engine.step_ns").snapshot();
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    record_.max_rss_kb = static_cast<double>(usage.ru_maxrss);
    record_.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                           1e-6 * static_cast<double>(usage.ru_utime.tv_usec);
    record_.system_seconds =
        static_cast<double>(usage.ru_stime.tv_sec) +
        1e-6 * static_cast<double>(usage.ru_stime.tv_usec);
  }
  os_ << serialize_telemetry(record_) << '\n';
  os_.flush();
  ++record_.seq;
  last_append_monotonic_ = now;
}

}  // namespace roboads::shard
