#include "scenario/spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace roboads::scenario {
namespace {

// Round-trip double formatting shared by the serializer: integral values
// print without an exponent (onsets, masks, whole-number magnitudes stay
// human-readable), everything else at %.17g so parse(serialize(x)) == x
// exactly and the canonical form is unique per double.
std::string format_number(double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void write_quoted(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_vector(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << format_number(v[i]);
  }
  os << ']';
}

void write_mask(std::ostream& os, const std::vector<bool>& mask) {
  os << '[';
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (i != 0) os << ", ";
    os << (mask[i] ? '1' : '0');
  }
  os << ']';
}

// ---- Parsing -------------------------------------------------------------

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw SpecError("spec parse error at line " + std::to_string(line) + ": " +
                  message);
}

// Line tokenizer: bare words, quoted strings (one token, unescaped), and
// bracketed lists (one token per element, wrapped in "[" / "]" markers).
std::vector<std::string> tokenize(const std::string& line, std::size_t num) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      ++i;
      continue;
    }
    if (c == '[' || c == ']') {
      tokens.push_back(std::string(1, c));
      ++i;
      continue;
    }
    if (c == '"') {
      std::string out;
      ++i;
      bool closed = false;
      while (i < line.size()) {
        const char d = line[i++];
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\') {
          if (i >= line.size()) parse_error(num, "dangling escape");
          const char e = line[i++];
          switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            default: parse_error(num, std::string("bad escape \\") + e);
          }
        } else {
          out += d;
        }
      }
      if (!closed) parse_error(num, "unterminated string");
      tokens.push_back("\"" + out);  // leading quote marks a string token
      continue;
    }
    std::string word;
    while (i < line.size()) {
      const char d = line[i];
      if (std::isspace(static_cast<unsigned char>(d)) || d == ',' ||
          d == '[' || d == ']') {
        break;
      }
      word += d;
      ++i;
    }
    tokens.push_back(word);
  }
  return tokens;
}

class TokenCursor {
 public:
  TokenCursor(std::vector<std::string> tokens, std::size_t line)
      : tokens_(std::move(tokens)), line_(line) {}

  bool done() const { return pos_ >= tokens_.size(); }
  std::size_t line() const { return line_; }

  const std::string& next(const char* what) {
    if (done()) parse_error(line_, std::string("expected ") + what);
    return tokens_[pos_++];
  }

  std::string next_string(const char* what) {
    const std::string& t = next(what);
    if (t.empty() || t[0] != '"') {
      parse_error(line_, std::string("expected quoted ") + what);
    }
    return t.substr(1);
  }

  std::string next_word(const char* what) {
    const std::string& t = next(what);
    if (!t.empty() && t[0] == '"') {
      parse_error(line_, std::string("expected bare word for ") + what);
    }
    return t;
  }

  double next_number(const char* what) {
    const std::string t = next_word(what);
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end == t.c_str() || *end != '\0') {
      parse_error(line_, std::string("bad number for ") + what + ": \"" + t +
                             "\"");
    }
    return v;
  }

  std::size_t next_index(const char* what) {
    const double v = next_number(what);
    if (v < 0.0 || v != std::floor(v)) {
      parse_error(line_, std::string(what) + " must be a non-negative integer");
    }
    return static_cast<std::size_t>(v);
  }

  std::uint64_t next_u64(const char* what) {
    const std::string t = next_word(what);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (end == t.c_str() || *end != '\0') {
      parse_error(line_, std::string("bad integer for ") + what + ": \"" + t +
                             "\"");
    }
    return static_cast<std::uint64_t>(v);
  }

  std::vector<double> next_list(const char* what) {
    if (next(what) != "[") {
      parse_error(line_, std::string("expected [ to open ") + what);
    }
    std::vector<double> out;
    while (true) {
      if (done()) parse_error(line_, std::string("unterminated ") + what);
      if (tokens_[pos_] == "]") {
        ++pos_;
        return out;
      }
      out.push_back(next_number(what));
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;
};

AttackShape shape_from(const std::string& word, std::size_t line) {
  if (word == "bias") return AttackShape::kBias;
  if (word == "ramp") return AttackShape::kRamp;
  if (word == "freeze") return AttackShape::kFreeze;
  if (word == "replace") return AttackShape::kReplace;
  if (word == "scale") return AttackShape::kScale;
  if (word == "noise") return AttackShape::kNoise;
  if (word == "flat-obstruction") return AttackShape::kFlatObstruction;
  parse_error(line, "unknown attack shape \"" + word + "\"");
}

Target target_from(const std::string& word, std::size_t line) {
  if (word == "sensor") return Target::kSensor;
  if (word == "lidar-raw") return Target::kLidarRaw;
  if (word == "actuator") return Target::kActuator;
  parse_error(line, "unknown attack target \"" + word + "\"");
}

AttackSpec parse_attack(TokenCursor& cur) {
  AttackSpec attack;
  attack.shape = shape_from(cur.next_word("attack shape"), cur.line());
  attack.target = target_from(cur.next_word("attack target"), cur.line());
  attack.workflow = cur.next_string("workflow name");
  // Fixed keyed fields, in canonical order; shape-specific keys afterwards.
  while (!cur.done()) {
    const std::string key = cur.next_word("attack field");
    if (key == "onset") {
      attack.onset = cur.next_index("onset");
    } else if (key == "duration") {
      // "forever" or an iteration count.
      const std::string value = cur.next_word("duration");
      if (value == "forever") {
        attack.duration = kForever;
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
          parse_error(cur.line(), "bad duration \"" + value + "\"");
        }
        attack.duration = static_cast<std::size_t>(v);
      }
    } else if (key == "magnitude") {
      attack.magnitude = Vector(cur.next_list("magnitude"));
    } else if (key == "mask") {
      const std::vector<double> raw = cur.next_list("mask");
      attack.mask.clear();
      for (double v : raw) {
        if (v != 0.0 && v != 1.0) {
          parse_error(cur.line(), "mask entries must be 0 or 1");
        }
        attack.mask.push_back(v != 0.0);
      }
    } else if (key == "noise-seed") {
      attack.noise_seed = cur.next_u64("noise-seed");
    } else if (key == "beams") {
      const std::vector<double> beams = cur.next_list("beams");
      if (beams.size() != 2 || beams[0] < 0 || beams[1] < 0 ||
          beams[0] != std::floor(beams[0]) || beams[1] != std::floor(beams[1])) {
        parse_error(cur.line(), "beams expects [first, last]");
      }
      attack.first_beam = static_cast<std::size_t>(beams[0]);
      attack.last_beam = static_cast<std::size_t>(beams[1]);
    } else if (key == "distance") {
      attack.distance = cur.next_number("distance");
    } else if (key == "center") {
      attack.center_angle = cur.next_number("center");
    } else {
      parse_error(cur.line(), "unknown attack field \"" + key + "\"");
    }
  }
  return attack;
}

FaultSpec parse_fault(TokenCursor& cur) {
  FaultSpec fault;
  fault.sensor = cur.next_string("fault sensor name");
  while (!cur.done()) {
    const std::string key = cur.next_word("fault field");
    if (key == "drop") {
      fault.drop_rate = cur.next_number("drop");
    } else if (key == "stale") {
      fault.stale_rate = cur.next_number("stale");
    } else if (key == "duplicate") {
      fault.duplicate_rate = cur.next_number("duplicate");
    } else if (key == "freeze-at") {
      fault.freeze_at = cur.next_index("freeze-at");
    } else if (key == "freeze-duration") {
      fault.freeze_duration = cur.next_index("freeze-duration");
    } else {
      parse_error(cur.line(), "unknown fault field \"" + key + "\"");
    }
  }
  return fault;
}

}  // namespace

const char* to_string(AttackShape shape) {
  switch (shape) {
    case AttackShape::kBias: return "bias";
    case AttackShape::kRamp: return "ramp";
    case AttackShape::kFreeze: return "freeze";
    case AttackShape::kReplace: return "replace";
    case AttackShape::kScale: return "scale";
    case AttackShape::kNoise: return "noise";
    case AttackShape::kFlatObstruction: return "flat-obstruction";
  }
  return "?";
}

const char* to_string(Target target) {
  switch (target) {
    case Target::kSensor: return "sensor";
    case Target::kLidarRaw: return "lidar-raw";
    case Target::kActuator: return "actuator";
  }
  return "?";
}

std::string serialize(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "roboads-scenario-spec v1\n";
  os << "name ";
  write_quoted(os, spec.name);
  os << "\nplatform " << spec.platform;
  os << "\niterations " << spec.iterations;
  os << "\nseed " << spec.seed;
  os << "\ndescription ";
  write_quoted(os, spec.description);
  os << '\n';
  for (const AttackSpec& a : spec.attacks) {
    os << "attack " << to_string(a.shape) << ' ' << to_string(a.target) << ' ';
    write_quoted(os, a.workflow);
    os << " onset " << a.onset << " duration ";
    if (a.duration == kForever) {
      os << "forever";
    } else {
      os << a.duration;
    }
    switch (a.shape) {
      case AttackShape::kBias:
      case AttackShape::kRamp:
      case AttackShape::kScale:
        os << " magnitude ";
        write_vector(os, a.magnitude);
        break;
      case AttackShape::kNoise:
        os << " magnitude ";
        write_vector(os, a.magnitude);
        os << " noise-seed " << a.noise_seed;
        break;
      case AttackShape::kReplace:
        if (!a.mask.empty()) {
          os << " mask ";
          write_mask(os, a.mask);
        }
        os << " magnitude ";
        write_vector(os, a.magnitude);
        break;
      case AttackShape::kFreeze:
        break;
      case AttackShape::kFlatObstruction:
        os << " beams [" << a.first_beam << ", " << a.last_beam
           << "] distance " << format_number(a.distance);
        if (a.center_angle.has_value()) {
          os << " center " << format_number(*a.center_angle);
        }
        break;
    }
    os << '\n';
  }
  for (const FaultSpec& f : spec.faults) {
    os << "fault ";
    write_quoted(os, f.sensor);
    // Canonical form: only non-zero fields, in fixed order, so the
    // serializer output stays unique per spec.
    if (f.drop_rate != 0.0) os << " drop " << format_number(f.drop_rate);
    if (f.stale_rate != 0.0) os << " stale " << format_number(f.stale_rate);
    if (f.duplicate_rate != 0.0) {
      os << " duplicate " << format_number(f.duplicate_rate);
    }
    if (f.freeze_at != 0) os << " freeze-at " << f.freeze_at;
    if (f.freeze_duration != 0) os << " freeze-duration " << f.freeze_duration;
    os << '\n';
  }
  if (!spec.faults.empty()) os << "fault-seed " << spec.fault_seed << '\n';
  os << "end\n";
  return os.str();
}

ScenarioSpec parse(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t num = 0;
  ScenarioSpec spec;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++num;
    // Comments and blank lines are accepted on input (handy for corpus
    // files), though the canonical serializer never emits them.
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (!saw_header) {
      if (line.substr(first) != "roboads-scenario-spec v1") {
        parse_error(num, "expected header \"roboads-scenario-spec v1\"");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) parse_error(num, "content after \"end\"");
    TokenCursor cur(tokenize(line, num), num);
    const std::string key = cur.next_word("directive");
    if (key == "end") {
      if (!cur.done()) parse_error(num, "trailing tokens after \"end\"");
      saw_end = true;
    } else if (key == "name") {
      spec.name = cur.next_string("name");
    } else if (key == "platform") {
      spec.platform = cur.next_word("platform");
    } else if (key == "iterations") {
      spec.iterations = cur.next_index("iterations");
    } else if (key == "seed") {
      spec.seed = cur.next_u64("seed");
    } else if (key == "description") {
      spec.description = cur.next_string("description");
    } else if (key == "attack") {
      spec.attacks.push_back(parse_attack(cur));
      continue;  // parse_attack consumes the rest of the line
    } else if (key == "fault") {
      spec.faults.push_back(parse_fault(cur));
      continue;  // parse_fault consumes the rest of the line
    } else if (key == "fault-seed") {
      spec.fault_seed = cur.next_u64("fault-seed");
    } else {
      parse_error(num, "unknown directive \"" + key + "\"");
    }
    if (key != "end" && !cur.done()) {
      parse_error(num, "trailing tokens after \"" + key + "\"");
    }
  }
  if (!saw_header) throw SpecError("spec parse error: empty input");
  if (!saw_end) throw SpecError("spec parse error: missing \"end\"");
  return spec;
}

attacks::GroundTruth spec_truth_at(const ScenarioSpec& spec, std::size_t k,
                                   const sensors::SensorSuite& suite) {
  attacks::GroundTruth truth;
  for (const AttackSpec& a : spec.attacks) {
    if (!a.active_at(k)) continue;
    if (a.target == Target::kActuator) {
      truth.actuator_corrupted = true;
    } else {
      truth.corrupted_sensors.push_back(suite.index_of(a.workflow));
    }
  }
  std::sort(truth.corrupted_sensors.begin(), truth.corrupted_sensors.end());
  truth.corrupted_sensors.erase(std::unique(truth.corrupted_sensors.begin(),
                                            truth.corrupted_sensors.end()),
                                truth.corrupted_sensors.end());
  return truth;
}

}  // namespace roboads::scenario
