#include "scenario/compile.h"

#include <cmath>

#include "eval/khepera.h"
#include "eval/scoring.h"
#include "eval/tamiya.h"

namespace roboads::scenario {
namespace {

[[noreturn]] void spec_error(const ScenarioSpec& spec,
                             const std::string& message) {
  throw SpecError("spec \"" + spec.name + "\": " + message);
}

// Dimension of the data vector an attack corrupts.
std::size_t target_dim(const ScenarioSpec& spec, const AttackSpec& attack,
                       const eval::Platform& platform,
                       const PlatformTraits& traits) {
  switch (attack.target) {
    case Target::kSensor: {
      const sensors::SensorSuite& suite = platform.suite();
      for (std::size_t i = 0; i < suite.count(); ++i) {
        if (suite.sensor(i).name() == attack.workflow) {
          return suite.sensor(i).dim();
        }
      }
      spec_error(spec, "unknown sensor workflow \"" + attack.workflow + "\"");
    }
    case Target::kLidarRaw:
      if (traits.lidar_beams == 0) {
        spec_error(spec, "platform has no raw LiDAR scan to attack");
      }
      if (attack.workflow != "lidar") {
        spec_error(spec, "lidar-raw attacks must target workflow \"lidar\"");
      }
      return traits.lidar_beams;
    case Target::kActuator:
      if (attack.workflow != traits.actuator_workflow) {
        spec_error(spec, "unknown actuation workflow \"" + attack.workflow +
                             "\" (platform's is \"" +
                             traits.actuator_workflow + "\")");
      }
      return traits.actuator_dim;
  }
  spec_error(spec, "corrupt attack target");
}

void validate_attack(const ScenarioSpec& spec, const AttackSpec& attack,
                     const eval::Platform& platform,
                     const PlatformTraits& traits) {
  // Window validation first: these are the two edge cases the enum-era
  // injectors mishandled — an onset at or beyond the mission horizon was
  // accepted silently (an attack that never fires but still reads as a
  // scenario), and a zero duration crashed injector construction with a
  // CheckError instead of rejecting the input (tests/scenario_spec_test.cc
  // pins both as SpecErrors).
  if (attack.onset >= spec.iterations) {
    spec_error(spec, "attack onset " + std::to_string(attack.onset) +
                         " is at or beyond the mission horizon of " +
                         std::to_string(spec.iterations) + " iterations");
  }
  if (attack.duration == 0) {
    spec_error(spec, "attack duration must be positive (zero-duration "
                     "attacks would silently never fire)");
  }
  if (attack.duration != kForever &&
      attack.duration > kForever - attack.onset) {
    spec_error(spec, "attack window overflows; use duration \"forever\"");
  }
  const std::size_t dim = target_dim(spec, attack, platform, traits);

  const auto expect_magnitude_dim = [&](const char* what) {
    if (attack.magnitude.size() != dim) {
      spec_error(spec, std::string(what) + " magnitude must have " +
                           std::to_string(dim) + " components for \"" +
                           attack.workflow + "\", got " +
                           std::to_string(attack.magnitude.size()));
    }
  };

  switch (attack.shape) {
    case AttackShape::kBias:
      expect_magnitude_dim("bias");
      break;
    case AttackShape::kRamp:
      expect_magnitude_dim("ramp");
      break;
    case AttackShape::kScale:
      expect_magnitude_dim("scale");
      break;
    case AttackShape::kNoise:
      expect_magnitude_dim("noise");
      for (std::size_t i = 0; i < attack.magnitude.size(); ++i) {
        if (attack.magnitude[i] < 0.0) {
          spec_error(spec, "noise stddevs must be non-negative");
        }
      }
      break;
    case AttackShape::kReplace:
      if (attack.mask.empty()) {
        if (attack.magnitude.size() != 1 && attack.magnitude.size() != dim) {
          spec_error(spec, "maskless replace magnitude must be a single "
                           "broadcast value or one value per component");
        }
      } else {
        if (attack.mask.size() != dim) {
          spec_error(spec, "replace mask must have " + std::to_string(dim) +
                               " entries for \"" + attack.workflow + "\"");
        }
        if (attack.magnitude.size() != dim) {
          spec_error(spec, "masked replace magnitude must have " +
                               std::to_string(dim) + " components");
        }
      }
      break;
    case AttackShape::kFreeze:
      if (!attack.magnitude.empty()) {
        spec_error(spec, "freeze attacks take no magnitude");
      }
      break;
    case AttackShape::kFlatObstruction: {
      if (attack.target != Target::kLidarRaw) {
        spec_error(spec, "flat-obstruction attacks apply to lidar-raw only");
      }
      if (attack.first_beam >= attack.last_beam ||
          attack.last_beam > traits.lidar_beams) {
        spec_error(spec, "invalid obstruction beam sector [" +
                             std::to_string(attack.first_beam) + ", " +
                             std::to_string(attack.last_beam) + ") of " +
                             std::to_string(traits.lidar_beams) + " beams");
      }
      if (attack.distance <= 0.0) {
        spec_error(spec, "obstruction distance must be positive");
      }
      // The flat board must stay in front of every covered beam (mirrors
      // FlatObstructionInjector's geometry check, surfaced as a SpecError).
      const auto beam_angle = [&](std::size_t beam) {
        return (static_cast<double>(beam) /
                    static_cast<double>(traits.lidar_beams - 1) -
                0.5) *
               traits.lidar_fov;
      };
      const double center = attack.center_angle.value_or(
          0.5 * (beam_angle(attack.first_beam) +
                 beam_angle(attack.last_beam - 1)));
      for (std::size_t i = attack.first_beam; i < attack.last_beam; ++i) {
        if (std::abs(beam_angle(i) - center) >= M_PI / 2.0 - 0.03) {
          spec_error(spec, "obstruction sector too wide for a flat board");
        }
      }
      break;
    }
  }
}

// Mirrors TransportFaultModel's constructor checks (plus spec-level window
// sanity) as SpecErrors: a bad faults stanza is bad *input*, and must be
// rejected before the sim layer can trip an internal CheckError on it.
void validate_fault(const ScenarioSpec& spec, const FaultSpec& fault,
                    const eval::Platform& platform) {
  const sensors::SensorSuite& suite = platform.suite();
  bool known = false;
  for (std::size_t i = 0; i < suite.count(); ++i) {
    if (suite.sensor(i).name() == fault.sensor) {
      known = true;
      break;
    }
  }
  if (!known) {
    spec_error(spec, "unknown fault sensor \"" + fault.sensor + "\"");
  }
  if (fault.drop_rate < 0.0 || fault.stale_rate < 0.0 ||
      fault.duplicate_rate < 0.0) {
    spec_error(spec, "fault rates must be non-negative");
  }
  if (fault.drop_rate + fault.stale_rate + fault.duplicate_rate > 1.0) {
    spec_error(spec, "fault rates for \"" + fault.sensor +
                         "\" must sum to at most 1");
  }
  if (fault.freeze_duration > 0 && fault.freeze_at == 0) {
    spec_error(spec, "fault freeze window needs freeze-at >= 1");
  }
  if (fault.freeze_duration > 0 && fault.freeze_at >= spec.iterations) {
    spec_error(spec, "fault freeze-at " + std::to_string(fault.freeze_at) +
                         " is at or beyond the mission horizon of " +
                         std::to_string(spec.iterations) + " iterations");
  }
}

void validate_faults(const ScenarioSpec& spec,
                     const eval::Platform& platform) {
  for (std::size_t i = 0; i < spec.faults.size(); ++i) {
    validate_fault(spec, spec.faults[i], platform);
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.faults[j].sensor == spec.faults[i].sensor) {
        spec_error(spec, "duplicate fault stanza for sensor \"" +
                             spec.faults[i].sensor + "\"");
      }
    }
  }
}

attacks::Window window_of(const AttackSpec& attack) {
  attacks::Window window;
  window.start = attack.onset;
  window.end = attack.duration == kForever ? kForever
                                           : attack.onset + attack.duration;
  return window;
}

attacks::InjectorPtr build_injector(const AttackSpec& attack,
                                    std::size_t dim, double lidar_fov,
                                    std::size_t lidar_beams) {
  const attacks::Window window = window_of(attack);
  switch (attack.shape) {
    case AttackShape::kBias:
      return std::make_shared<attacks::BiasInjector>(window, attack.magnitude);
    case AttackShape::kRamp:
      return std::make_shared<attacks::RampInjector>(window, attack.magnitude);
    case AttackShape::kScale:
      return std::make_shared<attacks::ScaleInjector>(window,
                                                      attack.magnitude);
    case AttackShape::kNoise:
      return std::make_shared<attacks::NoiseInjector>(
          window, attack.magnitude, attack.noise_seed);
    case AttackShape::kFreeze:
      return std::make_shared<attacks::StuckAtInjector>(window);
    case AttackShape::kReplace:
      if (attack.mask.empty()) {
        if (attack.magnitude.size() == 1) {
          return std::make_shared<attacks::ReplaceInjector>(
              window, dim, attack.magnitude[0]);
        }
        return std::make_shared<attacks::ReplaceInjector>(
            window, std::vector<bool>(dim, true), attack.magnitude);
      }
      return std::make_shared<attacks::ReplaceInjector>(window, attack.mask,
                                                        attack.magnitude);
    case AttackShape::kFlatObstruction:
      return std::make_shared<attacks::FlatObstructionInjector>(
          window, attack.first_beam, attack.last_beam, attack.distance,
          lidar_fov, lidar_beams, attack.center_angle);
  }
  throw SpecError("corrupt attack shape");
}

attacks::InjectionPoint point_of(Target target) {
  switch (target) {
    case Target::kSensor: return attacks::InjectionPoint::kSensorOutput;
    case Target::kLidarRaw: return attacks::InjectionPoint::kLidarRawScan;
    case Target::kActuator: return attacks::InjectionPoint::kActuatorCommand;
  }
  throw SpecError("corrupt attack target");
}

}  // namespace

std::vector<std::string> platform_names() { return {"khepera", "tamiya"}; }

std::unique_ptr<eval::Platform> make_platform(const std::string& name) {
  if (name == "khepera") return std::make_unique<eval::KheperaPlatform>();
  if (name == "tamiya") return std::make_unique<eval::TamiyaPlatform>();
  throw SpecError("unknown platform \"" + name + "\"");
}

PlatformTraits platform_traits(const std::string& name) {
  if (name == "khepera") {
    PlatformTraits traits;
    traits.actuator_workflow = "wheels";
    traits.actuator_dim = 2;  // (vL, vR)
    traits.lidar_beams = eval::KheperaConfig{}.lidar_beams;
    traits.lidar_fov = 2.0 * M_PI;
    return traits;
  }
  if (name == "tamiya") {
    PlatformTraits traits;
    traits.actuator_workflow = "drivetrain";
    traits.actuator_dim = 2;  // (speed, steer)
    traits.lidar_beams = eval::TamiyaConfig{}.lidar_beams;
    traits.lidar_fov = 2.0 * M_PI;
    return traits;
  }
  throw SpecError("unknown platform \"" + name + "\"");
}

attacks::Scenario compile_spec(const ScenarioSpec& spec,
                               const eval::Platform& platform,
                               const PlatformTraits& traits) {
  if (spec.iterations == 0) spec_error(spec, "mission needs iterations > 0");
  std::vector<attacks::Attachment> attachments;
  attachments.reserve(spec.attacks.size());
  for (const AttackSpec& attack : spec.attacks) {
    validate_attack(spec, attack, platform, traits);
    const std::size_t dim = target_dim(spec, attack, platform, traits);
    attacks::Attachment attachment;
    attachment.point = point_of(attack.target);
    attachment.workflow = attack.workflow;
    attachment.injector = build_injector(attack, dim, traits.lidar_fov,
                                         traits.lidar_beams);
    attachments.push_back(std::move(attachment));
  }
  validate_faults(spec, platform);
  return attacks::Scenario(spec.name, spec.description,
                           std::move(attachments));
}

attacks::Scenario compile_spec(const ScenarioSpec& spec) {
  const std::unique_ptr<eval::Platform> platform =
      make_platform(spec.platform);
  return compile_spec(spec, *platform, platform_traits(spec.platform));
}

void validate_spec(const ScenarioSpec& spec) {
  const std::unique_ptr<eval::Platform> platform =
      make_platform(spec.platform);
  const PlatformTraits traits = platform_traits(spec.platform);
  if (spec.iterations == 0) spec_error(spec, "mission needs iterations > 0");
  for (const AttackSpec& attack : spec.attacks) {
    validate_attack(spec, attack, *platform, traits);
  }
  validate_faults(spec, *platform);
}

sim::TransportFaultConfig transport_faults_of(const ScenarioSpec& spec,
                                              const eval::Platform& platform) {
  validate_faults(spec, platform);
  sim::TransportFaultConfig config;
  config.seed = spec.fault_seed;
  config.sensors.reserve(spec.faults.size());
  for (const FaultSpec& f : spec.faults) {
    sim::SensorFaultSpec s;
    s.sensor = f.sensor;
    s.drop_rate = f.drop_rate;
    s.stale_rate = f.stale_rate;
    s.duplicate_rate = f.duplicate_rate;
    s.freeze_at = f.freeze_at;
    s.freeze_duration = f.freeze_duration;
    config.sensors.push_back(std::move(s));
  }
  return config;
}

sim::TransportFaultConfig transport_faults_of(const ScenarioSpec& spec) {
  const std::unique_ptr<eval::Platform> platform =
      make_platform(spec.platform);
  return transport_faults_of(spec, *platform);
}

SpecRun run_spec(const ScenarioSpec& spec) {
  const std::unique_ptr<eval::Platform> platform =
      make_platform(spec.platform);
  const attacks::Scenario scenario =
      compile_spec(spec, *platform, platform_traits(spec.platform));
  eval::MissionConfig config;
  config.iterations = spec.iterations;
  config.seed = spec.seed;
  config.transport_faults = transport_faults_of(spec, *platform);
  SpecRun run;
  run.name = spec.name;
  run.result = eval::run_mission(*platform, scenario, config);
  run.score = eval::score_mission(run.result, *platform);
  return run;
}

bool sensor_detected(const eval::ScenarioScore& score) {
  for (const eval::DelayRecord& d : score.delays) {
    if (d.label != "actuator" && d.seconds) return true;
  }
  return false;
}

bool actuator_detected(const eval::ScenarioScore& score) {
  for (const eval::DelayRecord& d : score.delays) {
    if (d.label == "actuator" && d.seconds) return true;
  }
  return false;
}

}  // namespace roboads::scenario
