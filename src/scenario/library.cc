// Keep these definitions in lockstep with eval/khepera.cc and
// eval/tamiya.cc: the equivalence suite pins each spec against its enum
// twin, so a drift on either side fails tests/scenario_equivalence_test.cc.
#include "scenario/library.h"

#include <cmath>

#include "dynamics/diff_drive.h"

namespace roboads::scenario {
namespace {

// The Table II trigger timeline (eval/khepera.cc): phase boundaries at 6 s,
// 12 s and 18 s of a 25 s mission.
constexpr std::size_t kPhase1 = 60;
constexpr std::size_t kPhase2 = 120;
constexpr std::size_t kPhase3 = 180;

AttackSpec attack(AttackShape shape, Target target, std::string workflow,
                  std::size_t onset, std::size_t duration,
                  Vector magnitude = {}) {
  AttackSpec a;
  a.shape = shape;
  a.target = target;
  a.workflow = std::move(workflow);
  a.onset = onset;
  a.duration = duration;
  a.magnitude = std::move(magnitude);
  return a;
}

AttackSpec obstruction(std::size_t onset, std::size_t first_beam,
                       std::size_t last_beam, double distance,
                       double center_angle) {
  AttackSpec a;
  a.shape = AttackShape::kFlatObstruction;
  a.target = Target::kLidarRaw;
  a.workflow = "lidar";
  a.onset = onset;
  a.duration = kForever;
  a.first_beam = first_beam;
  a.last_beam = last_beam;
  a.distance = distance;
  a.center_angle = center_angle;
  return a;
}

ScenarioSpec khepera_spec(std::string name, std::string description,
                          std::vector<AttackSpec> attacks) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.platform = "khepera";
  spec.attacks = std::move(attacks);
  return spec;
}

}  // namespace

ScenarioSpec khepera_table2_spec(std::size_t number) {
  // ±6000 Khepera speed units = ±0.04 m/s (§V-B).
  const double bomb = dyn::khepera_units_to_mps(6000.0);
  // "+100 steps on the left wheel encoder" folded through the differential
  // odometry geometry (see eval/khepera.cc's kEncoderBombSlope).
  const Vector encoder_bomb_slope{0.001, 0.0, -0.022};

  switch (number) {
    case 1:
      return khepera_spec(
          "#1 wheel controller logic bomb",
          "logic bomb in actuator utility lib alters planned commands "
          "(actuator/cyber): -6000 units on vL, +6000 on vR",
          {attack(AttackShape::kBias, Target::kActuator, "wheels", kPhase1,
                  kForever, Vector{-bomb, bomb})});
    case 2: {
      AttackSpec jam = attack(AttackShape::kReplace, Target::kActuator,
                              "wheels", kPhase1, kForever, Vector{0.0, 0.0});
      jam.mask = {true, false};
      return khepera_spec(
          "#2 wheel jamming",
          "left wheel physically jammed (actuator/physical): vL forced to 0",
          {std::move(jam)});
    }
    case 3:
      return khepera_spec(
          "#3 IPS logic bomb",
          "logic bomb in IPS data processing lib (sensor/cyber): "
          "shift +0.07 m on X",
          {attack(AttackShape::kBias, Target::kSensor, "ips", kPhase1,
                  kForever, Vector{0.07, 0.0, 0.0})});
    case 4:
      return khepera_spec(
          "#4 IPS spoofing",
          "fake IPS signal overpowers authentic source (sensor/physical): "
          "shift -0.1 m on X",
          {attack(AttackShape::kBias, Target::kSensor, "ips", kPhase1,
                  kForever, Vector{-0.1, 0.0, 0.0})});
    case 5:
      return khepera_spec(
          "#5 wheel encoder logic bomb",
          "logic bomb in wheel encoder processing lib (sensor/cyber): "
          "+100 steps on the left encoder",
          {attack(AttackShape::kRamp, Target::kSensor, "wheel_encoder",
                  kPhase1, kForever, encoder_bomb_slope)});
    case 6:
      return khepera_spec(
          "#6 LiDAR DoS",
          "LiDAR wire cut (sensor/physical): 0 m readings in every direction",
          {attack(AttackShape::kReplace, Target::kLidarRaw, "lidar", kPhase1,
                  kForever, Vector{0.0})});
    case 7:
      return khepera_spec(
          "#7 LiDAR sensor blocking",
          "laser ejection/reception blocked (sensor/physical): a scan "
          "sector reads an obstruction instead of the wall",
          {obstruction(kPhase1, 62, 81, 0.15, M_PI),
           obstruction(kPhase1, 0, 19, 0.15, -M_PI)});
    case 8:
      return khepera_spec(
          "#8 wheel controller & IPS logic bomb",
          "both wheel commands and IPS readings altered "
          "(sensor & actuator / cyber)",
          {attack(AttackShape::kBias, Target::kSensor, "ips", 40, kForever,
                  Vector{0.07, 0.0, 0.0}),
           attack(AttackShape::kBias, Target::kActuator, "wheels", 100,
                  kForever, Vector{-bomb, bomb})});
    case 9:
      return khepera_spec(
          "#9 LiDAR DoS & wheel encoder logic bomb",
          "encoder readings altered, then LiDAR blocked "
          "(sensor / cyber & physical): S0→2→4",
          {attack(AttackShape::kRamp, Target::kSensor, "wheel_encoder",
                  kPhase1, kForever, encoder_bomb_slope),
           attack(AttackShape::kReplace, Target::kLidarRaw, "lidar", kPhase2,
                  kForever, Vector{0.0})});
    case 10:
      return khepera_spec(
          "#10 IPS spoofing & LiDAR DoS",
          "LiDAR blocked, IPS spoofed, LiDAR restored "
          "(sensor/physical): S0→3→5→1",
          {attack(AttackShape::kReplace, Target::kLidarRaw, "lidar", kPhase1,
                  kPhase3 - kPhase1, Vector{0.0}),
           attack(AttackShape::kBias, Target::kSensor, "ips", kPhase2,
                  kForever, Vector{0.07, 0.0, 0.0})});
    case 11:
      return khepera_spec(
          "#11 IPS & wheel encoder logic bomb",
          "encoder readings altered, then IPS altered (sensor/cyber): "
          "S0→2→6",
          {attack(AttackShape::kRamp, Target::kSensor, "wheel_encoder",
                  kPhase1, kForever, encoder_bomb_slope),
           attack(AttackShape::kBias, Target::kSensor, "ips", kPhase2,
                  kForever, Vector{0.1, 0.0, 0.0})});
    default:
      throw SpecError("Table II scenario number must be 1..11, got " +
                      std::to_string(number));
  }
}

std::vector<ScenarioSpec> khepera_table2_specs() {
  std::vector<ScenarioSpec> out;
  out.reserve(11);
  for (std::size_t n = 1; n <= 11; ++n) out.push_back(khepera_table2_spec(n));
  return out;
}

std::vector<ScenarioSpec> khepera_extended_specs() {
  std::vector<ScenarioSpec> out;
  out.push_back(khepera_spec(
      "X1 IPS replay (stuck-at)",
      "recorded IPS packets replayed on the bus for 6 s: readings freeze "
      "at the last clean value (sensor/cyber)",
      {attack(AttackShape::kFreeze, Target::kSensor, "ips", kPhase1,
              kPhase2 - kPhase1)}));
  out.push_back(khepera_spec(
      "X2 odometry gain miscalibration",
      "wheel-encoder processing scales distances by 12% (sensor/cyber)",
      {attack(AttackShape::kScale, Target::kSensor, "wheel_encoder", kPhase1,
              kForever, Vector{1.12, 1.12, 1.0})}));
  out.push_back(khepera_spec(
      "X3 IPS heading drift",
      "gyro-style slow drift on the IPS heading channel "
      "(sensor/physical): 5 mrad per iteration",
      {attack(AttackShape::kRamp, Target::kSensor, "ips", kPhase1, kForever,
              Vector{0.0, 0.0, 0.005})}));
  out.push_back(khepera_spec(
      "X4 coordinated simultaneous attack",
      "IPS and wheel encoder corrupted in the same iteration — the "
      "coordinated multi-workflow attack §II-B calls 'a great challenge' "
      "to launch",
      {attack(AttackShape::kBias, Target::kSensor, "ips", kPhase1, kForever,
              Vector{0.08, 0.0, 0.0}),
       attack(AttackShape::kRamp, Target::kSensor, "wheel_encoder", kPhase1,
              kForever, Vector{0.001, 0.0, -0.022})}));
  out.push_back(khepera_spec(
      "X5 drive gain fault (runaway)",
      "drive stage amplifies both wheel commands 3.5x — a runaway that keeps "
      "steering authority (actuator/hardware failure). Note: common-mode "
      "speed anomalies are structurally harder to see than differential "
      "ones (position carries less per-step information than heading), so "
      "the detectable gain is higher than the wheel-bomb magnitudes",
      {attack(AttackShape::kScale, Target::kActuator, "wheels", kPhase1,
              kForever, Vector{3.5, 3.5})}));
  return out;
}

std::vector<ScenarioSpec> tamiya_battery_specs() {
  const auto tamiya_spec = [](std::string name, std::string description,
                              std::vector<AttackSpec> attacks) {
    ScenarioSpec spec;
    spec.name = std::move(name);
    spec.description = std::move(description);
    spec.platform = "tamiya";
    spec.attacks = std::move(attacks);
    return spec;
  };

  std::vector<ScenarioSpec> out;
  out.push_back(tamiya_spec(
      "T1 unintended acceleration",
      "drive-by-wire software defect adds +0.4 m/s to the commanded speed "
      "(actuator/cyber, the paper's Toyota example)",
      {attack(AttackShape::kBias, Target::kActuator, "drivetrain", kPhase1,
              kForever, Vector{0.4, 0.0})}));
  out.push_back(tamiya_spec(
      "T2 steering takeover",
      "injected steering command packets (actuator/cyber)",
      {attack(AttackShape::kBias, Target::kActuator, "drivetrain", kPhase1,
              kForever, Vector{0.0, 0.35})}));
  out.push_back(tamiya_spec(
      "T3 IPS spoofing",
      "fake positioning base shifts Y by -0.15 m (sensor/physical)",
      {attack(AttackShape::kBias, Target::kSensor, "ips", kPhase1, kForever,
              Vector{0.0, -0.15, 0.0})}));
  out.push_back(tamiya_spec(
      "T4 IMU drift fault",
      "inertial navigation filter fault biases the pose (sensor/cyber)",
      {attack(AttackShape::kBias, Target::kSensor, "imu", kPhase1, kForever,
              Vector{0.3, 0.2, 0.0})}));
  out.push_back(tamiya_spec(
      "T5 LiDAR DoS",
      "LiDAR connection cut: 0 m in every direction (sensor/physical)",
      {attack(AttackShape::kReplace, Target::kLidarRaw, "lidar", kPhase1,
              kForever, Vector{0.0})}));
  out.push_back(tamiya_spec(
      "T6 IPS spoof & steering takeover",
      "combined sensor and actuator attack (cyber)",
      {attack(AttackShape::kBias, Target::kSensor, "ips", kPhase1, kForever,
              Vector{0.12, 0.0, 0.0}),
       attack(AttackShape::kBias, Target::kActuator, "drivetrain", kPhase2,
              kForever, Vector{0.0, 0.32})}));
  out.push_back(tamiya_spec(
      "T7 IMU fault & unintended acceleration",
      "inertial navigation fault followed by a speed-command defect "
      "(sensor & actuator)",
      {attack(AttackShape::kBias, Target::kSensor, "imu", kPhase1, kForever,
              Vector{0.3, -0.25, 0.0}),
       attack(AttackShape::kBias, Target::kActuator, "drivetrain", kPhase2,
              kForever, Vector{0.4, 0.0})}));
  return out;
}

std::vector<ScenarioSpec> all_library_specs() {
  std::vector<ScenarioSpec> out = khepera_table2_specs();
  for (ScenarioSpec& spec : khepera_extended_specs()) {
    out.push_back(std::move(spec));
  }
  for (ScenarioSpec& spec : tamiya_battery_specs()) {
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace roboads::scenario
