#include "scenario/frontier.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json.h"

namespace roboads::scenario {
namespace {

struct ProbeOutcome {
  bool detected = false;
  std::optional<double> delay_seconds;
};

ProbeOutcome probe(const FrontierAxis& axis, const FrontierConfig& config,
                   double magnitude) {
  ScenarioSpec spec = axis.make(magnitude);
  spec.iterations = config.iterations;
  spec.seed = config.seed;
  const SpecRun run = run_spec(spec);
  ProbeOutcome outcome;
  outcome.detected = axis.channel == "actuator"
                         ? actuator_detected(run.score)
                         : sensor_detected(run.score);
  if (outcome.detected) {
    for (const eval::DelayRecord& d : run.score.delays) {
      const bool is_actuator = d.label == "actuator";
      if ((axis.channel == "actuator") == is_actuator && d.seconds) {
        if (!outcome.delay_seconds || *d.seconds < *outcome.delay_seconds) {
          outcome.delay_seconds = d.seconds;
        }
      }
    }
  }
  return outcome;
}

}  // namespace

FrontierResult map_frontier(const FrontierAxis& axis,
                            const FrontierConfig& config) {
  return map_frontier_with(
      axis,
      [&](double magnitude) {
        const ProbeOutcome outcome = probe(axis, config, magnitude);
        FrontierProbe record;
        record.magnitude = magnitude;
        record.detected = outcome.detected;
        record.delay_seconds = outcome.delay_seconds;
        return record;
      },
      config);
}

FrontierResult map_frontier_with(const FrontierAxis& axis,
                                 const ProbeFn& probe_fn,
                                 const FrontierConfig& config) {
  FrontierResult result;
  result.id = axis.id;
  result.attack_class = axis.attack_class;
  result.platform = axis.platform;
  result.channel = axis.channel;
  result.unit = axis.unit;

  const auto run_probe = [&](double magnitude) {
    const FrontierProbe record = probe_fn(magnitude);
    result.probes.push_back(record);
    ProbeOutcome outcome;
    outcome.detected = record.detected;
    outcome.delay_seconds = record.delay_seconds;
    return outcome;
  };

  double lo = axis.lo;
  double hi = axis.hi;
  ProbeOutcome at_lo = run_probe(lo);
  ProbeOutcome at_hi = run_probe(hi);

  // Repair the bracket when the endpoint expectations miss: a detected lo
  // shrinks downward, an undetected hi grows upward. Whichever endpoint
  // still refuses to flip after the budget marks the axis degenerate.
  for (std::size_t i = 0;
       at_lo.detected && i < config.max_bracket_expansions; ++i) {
    lo *= 0.25;
    at_lo = run_probe(lo);
  }
  for (std::size_t i = 0;
       !at_hi.detected && i < config.max_bracket_expansions; ++i) {
    hi *= 4.0;
    at_hi = run_probe(hi);
  }
  if (at_lo.detected) {
    result.all_detected = true;
    result.caught_min = lo;
    result.delay_at_caught_seconds = at_lo.delay_seconds;
    return result;
  }
  if (!at_hi.detected) {
    result.none_detected = true;
    result.undetected_max = hi;
    return result;
  }

  // Bisect: invariant lo undetected, hi detected.
  std::optional<double> delay_at_hi = at_hi.delay_seconds;
  for (std::size_t step = 0; step < config.bisection_steps; ++step) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // magnitudes no longer distinct
    const ProbeOutcome at_mid = run_probe(mid);
    if (at_mid.detected) {
      hi = mid;
      delay_at_hi = at_mid.delay_seconds;
    } else {
      lo = mid;
    }
  }
  result.undetected_max = lo;
  result.caught_min = hi;
  result.delay_at_caught_seconds = delay_at_hi;
  return result;
}

namespace {

AttackSpec frontier_attack(AttackShape shape, Target target,
                           std::string workflow, Vector magnitude) {
  AttackSpec a;
  a.shape = shape;
  a.target = target;
  a.workflow = std::move(workflow);
  a.onset = 60;
  a.duration = kForever;
  a.magnitude = std::move(magnitude);
  return a;
}

ScenarioSpec frontier_spec(std::string platform, std::string id,
                           AttackSpec attack) {
  ScenarioSpec spec;
  spec.name = "frontier " + id;
  spec.description = "stealth-frontier probe";
  spec.platform = std::move(platform);
  spec.attacks.push_back(std::move(attack));
  return spec;
}

FrontierAxis sensor_axis(const std::string& platform, std::string id,
                         std::string attack_class, std::string sensor,
                         std::size_t dim, std::size_t component,
                         std::string unit, double lo, double hi) {
  FrontierAxis axis;
  axis.id = std::move(id);
  axis.attack_class = attack_class;
  axis.platform = platform;
  axis.channel = "sensor";
  axis.unit = std::move(unit);
  axis.lo = lo;
  axis.hi = hi;
  const AttackShape shape = attack_class == "bias" ? AttackShape::kBias
                            : attack_class == "ramp" ? AttackShape::kRamp
                                                     : AttackShape::kNoise;
  axis.make = [=](double m) {
    std::vector<double> mag(dim, 0.0);
    mag[component] = m;
    return frontier_spec(platform, axis.id,
                         frontier_attack(shape, Target::kSensor, sensor,
                                         Vector(std::move(mag))));
  };
  return axis;
}

FrontierAxis scale_axis(const std::string& platform, std::string id,
                        Target target, std::string workflow, std::size_t dim,
                        std::string channel, double lo, double hi) {
  FrontierAxis axis;
  axis.id = std::move(id);
  axis.attack_class = "scale";
  axis.platform = platform;
  axis.channel = std::move(channel);
  axis.unit = "gain-excess";  // magnitude m applies gain (1 + m) everywhere
  axis.lo = lo;
  axis.hi = hi;
  axis.make = [=](double m) {
    return frontier_spec(
        platform, axis.id,
        frontier_attack(AttackShape::kScale, target, workflow,
                        Vector(std::vector<double>(dim, 1.0 + m))));
  };
  return axis;
}

FrontierAxis freeze_axis(const std::string& platform, std::string id,
                         std::string sensor, double lo, double hi) {
  FrontierAxis axis;
  axis.id = std::move(id);
  axis.attack_class = "freeze";
  axis.platform = platform;
  axis.channel = "sensor";
  axis.unit = "iterations-held";
  axis.lo = lo;
  axis.hi = hi;
  axis.make = [=](double m) {
    AttackSpec a;
    a.shape = AttackShape::kFreeze;
    a.target = Target::kSensor;
    a.workflow = sensor;
    a.onset = 60;
    a.duration = std::max<std::size_t>(1, static_cast<std::size_t>(m));
    return frontier_spec(platform, axis.id, std::move(a));
  };
  return axis;
}

FrontierAxis actuator_bias_axis(const std::string& platform, std::string id,
                                std::string workflow, std::size_t dim,
                                std::size_t component, std::string unit,
                                double lo, double hi, double mirror) {
  FrontierAxis axis;
  axis.id = std::move(id);
  axis.attack_class = "bias";
  axis.platform = platform;
  axis.channel = "actuator";
  axis.unit = std::move(unit);
  axis.lo = lo;
  axis.hi = hi;
  // `mirror` puts -m on another component (the Table II differential wheel
  // bomb shape); mirror < 0 disables it.
  axis.make = [=](double m) {
    std::vector<double> mag(dim, 0.0);
    mag[component] = m;
    if (mirror >= 0.0 && static_cast<std::size_t>(mirror) != component) {
      mag[static_cast<std::size_t>(mirror)] = -m;
    }
    return frontier_spec(platform, axis.id,
                         frontier_attack(AttackShape::kBias, Target::kActuator,
                                         workflow, Vector(std::move(mag))));
  };
  return axis;
}

}  // namespace

std::vector<FrontierAxis> standard_axes(const std::string& platform) {
  std::vector<FrontierAxis> axes;
  if (platform == "khepera") {
    axes.push_back(sensor_axis(platform, "ips-bias-x", "bias", "ips", 3, 0,
                               "meters", 0.002, 0.2));
    axes.push_back(sensor_axis(platform, "ips-ramp-heading", "ramp", "ips", 3,
                               2, "radians-per-iteration", 1e-4, 0.02));
    axes.push_back(sensor_axis(platform, "ips-noise-x", "noise", "ips", 3, 0,
                               "meters-stddev", 0.002, 0.5));
    axes.push_back(scale_axis(platform, "encoder-scale", Target::kSensor,
                              "wheel_encoder", 3, "sensor", 0.01, 1.0));
    axes.push_back(freeze_axis(platform, "ips-freeze", "ips", 2.0, 120.0));
    axes.push_back(actuator_bias_axis(platform, "wheel-diff-bias", "wheels",
                                      2, 1, "mps", 0.002, 0.08,
                                      /*mirror=*/0.0));
    axes.push_back(scale_axis(platform, "wheel-gain", Target::kActuator,
                              "wheels", 2, "actuator", 0.1, 4.0));
  } else if (platform == "tamiya") {
    axes.push_back(sensor_axis(platform, "ips-bias-y", "bias", "ips", 3, 1,
                               "meters", 0.005, 0.4));
    axes.push_back(sensor_axis(platform, "imu-ramp-x", "ramp", "imu", 3, 0,
                               "meters-per-iteration", 1e-4, 0.05));
    axes.push_back(sensor_axis(platform, "imu-noise-x", "noise", "imu", 3, 0,
                               "meters-stddev", 0.005, 1.0));
    axes.push_back(freeze_axis(platform, "ips-freeze", "ips", 2.0, 120.0));
    axes.push_back(actuator_bias_axis(platform, "speed-bias", "drivetrain", 2,
                                      0, "mps", 0.01, 0.8, /*mirror=*/-1.0));
    axes.push_back(actuator_bias_axis(platform, "steer-bias", "drivetrain", 2,
                                      1, "radians", 0.005, 0.6,
                                      /*mirror=*/-1.0));
  } else {
    throw SpecError("unknown platform \"" + platform + "\"");
  }
  return axes;
}

void write_frontier_jsonl(std::ostream& os,
                          const std::vector<FrontierResult>& results) {
  namespace json = obs::json;
  for (const FrontierResult& r : results) {
    os << "{\"schema\":\"roboads-frontier\",\"version\":1,\"id\":";
    json::write_escaped(os, r.id);
    os << ",\"attack_class\":";
    json::write_escaped(os, r.attack_class);
    os << ",\"platform\":";
    json::write_escaped(os, r.platform);
    os << ",\"channel\":";
    json::write_escaped(os, r.channel);
    os << ",\"unit\":";
    json::write_escaped(os, r.unit);
    os << ",\"undetected_max\":";
    json::write_number(os, r.undetected_max);
    os << ",\"caught_min\":";
    json::write_number(os, r.caught_min);
    os << ",\"delay_at_caught_seconds\":";
    if (r.delay_at_caught_seconds) {
      json::write_number(os, *r.delay_at_caught_seconds);
    } else {
      os << "null";
    }
    os << ",\"all_detected\":" << (r.all_detected ? "true" : "false")
       << ",\"none_detected\":" << (r.none_detected ? "true" : "false")
       << ",\"probes\":[";
    for (std::size_t i = 0; i < r.probes.size(); ++i) {
      if (i) os << ',';
      os << "{\"magnitude\":";
      json::write_number(os, r.probes[i].magnitude);
      os << ",\"detected\":" << (r.probes[i].detected ? "true" : "false");
      os << ",\"delay_seconds\":";
      if (r.probes[i].delay_seconds) {
        json::write_number(os, *r.probes[i].delay_seconds);
      } else {
        os << "null";
      }
      os << '}';
    }
    os << "]}\n";
  }
}

}  // namespace roboads::scenario
