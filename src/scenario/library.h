// The legacy scenario batteries re-expressed as ScenarioSpecs: the eleven
// Table II Khepera scenarios, the five extended-taxonomy scenarios, and the
// seven Tamiya §V-D scenarios. tests/scenario_equivalence_test.cc proves
// each compiles to a mission bit-identical to its hand-written enum
// counterpart in eval::KheperaPlatform / eval::TamiyaPlatform.
#pragma once

#include <vector>

#include "scenario/spec.h"

namespace roboads::scenario {

// Table II scenario #n (1-based, 1..11); throws SpecError outside the range.
ScenarioSpec khepera_table2_spec(std::size_t number);

std::vector<ScenarioSpec> khepera_table2_specs();   // #1..#11
std::vector<ScenarioSpec> khepera_extended_specs(); // X1..X5
std::vector<ScenarioSpec> tamiya_battery_specs();   // T1..T7

// The full library, Khepera Table II first, then extended, then Tamiya.
std::vector<ScenarioSpec> all_library_specs();

}  // namespace roboads::scenario
