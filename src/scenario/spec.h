// Declarative scenario DSL (docs/SCENARIOS.md).
//
// A ScenarioSpec is data, not code: attack shape × magnitude × onset/duration
// × target workflow × platform, composable into multi-attack campaigns. The
// hand-written Table II / Tamiya / extended enum batteries are all
// re-expressible as specs (scenario/library.h) and compile onto the existing
// attacks:: injectors bit-identically (tests/scenario_equivalence_test.cc).
// Being data, specs can also be searched (scenario/frontier.h), randomized
// (scenario/fuzz.h), serialized as replayable regression cases
// (tests/data/fuzz_corpus/), and shrunk to minimal reproducers.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/scenario.h"
#include "matrix/matrix.h"

namespace roboads::scenario {

// Thrown on malformed spec text or an invalid spec (unknown platform or
// workflow, out-of-range onset, zero duration, magnitude dimension
// mismatch). Distinct from CheckError: a SpecError means the *input spec*
// is bad, not that the library hit an internal invariant.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

// The misbehavior taxonomy the DSL spans (paper Table I shapes plus the
// noise-inflation jamming class).
enum class AttackShape {
  kBias,             // constant offset (logic bombs, spoofing)
  kRamp,             // linearly growing offset (slow drift, §V-H evasion)
  kFreeze,           // stuck at the last clean value (replay / stalled bus)
  kReplace,          // fixed-value override (DoS, physical jamming)
  kScale,            // multiplicative gain (miscalibration, runaway drive)
  kNoise,            // additive Gaussian noise (signal-degrading jamming)
  kFlatObstruction,  // flat board over the scanner window (raw LiDAR only)
};

// Where the corruption enters the workflow (mirrors attacks::InjectionPoint).
enum class Target {
  kSensor,    // processed sensor output
  kLidarRaw,  // raw LiDAR range array, before scan processing
  kActuator,  // executed actuator command
};

// Sentinel duration: active from onset until the end of the mission.
inline constexpr std::size_t kForever = static_cast<std::size_t>(-1);

// One attack: a time-windowed corruption of one workflow.
struct AttackSpec {
  AttackShape shape = AttackShape::kBias;
  Target target = Target::kSensor;
  // Sensor name (suite naming), "lidar" for the raw scan, or the platform's
  // actuation workflow name.
  std::string workflow;

  std::size_t onset = 0;           // first active control iteration
  std::size_t duration = kForever; // active iterations (kForever = rest)

  // Shape-dependent payload: bias offset / ramp slope per iteration /
  // replace values / scale gains / noise stddevs. Empty for freeze and
  // flat-obstruction. For replace with an empty mask, a single element is
  // broadcast over the whole target vector (e.g. all-zero LiDAR DoS).
  Vector magnitude;
  // Replace only: which components are overwritten. Empty = all.
  std::vector<bool> mask;
  // Noise only: seed of the injector's private stream.
  std::uint64_t noise_seed = 0;

  // Flat obstruction only (beam indices into the raw scan).
  std::size_t first_beam = 0;
  std::size_t last_beam = 0;
  double distance = 0.0;
  std::optional<double> center_angle;

  // Half-open activity window [onset, onset + duration).
  bool active_at(std::size_t k) const {
    return k >= onset && (duration == kForever || k < onset + duration);
  }
};

// One transport-fault profile on one sensor's feed (maps onto
// sim::SensorFaultSpec): benign link-layer misbehavior — dropped, stale,
// duplicated or frozen readings — composed under whatever attacks the
// campaign carries. Faults never flip ground truth: alarms they provoke are
// false positives by definition, which is exactly what fuzzing under faults
// is probing for.
struct FaultSpec {
  std::string sensor;          // suite naming, e.g. "wheels", "lidar"
  double drop_rate = 0.0;      // P(reading lost this iteration)
  double stale_rate = 0.0;     // P(previous reading re-delivered)
  double duplicate_rate = 0.0; // P(reading delivered twice)
  std::size_t freeze_at = 0;       // first frozen iteration; 0 = never
  std::size_t freeze_duration = 0; // frozen iterations (needs freeze_at >= 1)
};

// A campaign: one mission's worth of attacks on one platform. Self-contained
// and replayable — platform, mission length and seed ride along, so a
// serialized spec is a complete regression case.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::string platform;       // "khepera" or "tamiya"
  std::size_t iterations = 250;
  std::uint64_t seed = 1;
  std::vector<AttackSpec> attacks;
  std::vector<FaultSpec> faults;
  // Seed of the transport-fault model's private streams; only serialized
  // when faults are present.
  std::uint64_t fault_seed = 0x5EED5EEDu;
};

const char* to_string(AttackShape shape);
const char* to_string(Target target);

// Canonical text form. serialize(parse(serialize(s))) == serialize(s) holds
// byte-for-byte (tests/scenario_spec_test.cc): numbers are emitted with
// round-trip precision and every field in a fixed order.
std::string serialize(const ScenarioSpec& spec);

// Parses the text form; throws SpecError with a line number on malformed
// input. Purely syntactic — semantic validation (platform, workflows,
// windows, dimensions) happens in compile_spec / validate_spec.
ScenarioSpec parse(const std::string& text);

// Spec-level ground truth at iteration k, resolved against the platform's
// sensor suite — computed from the attack windows alone, independently of
// the compiled injectors. The fuzzer cross-checks this against the compiled
// Scenario's truth_at as a compiler invariant (scenario/fuzz.h).
attacks::GroundTruth spec_truth_at(const ScenarioSpec& spec, std::size_t k,
                                   const sensors::SensorSuite& suite);

}  // namespace roboads::scenario
