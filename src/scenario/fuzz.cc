#include "scenario/fuzz.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/health.h"
#include "eval/mission.h"
#include "eval/scoring.h"
#include "sim/workflow.h"

namespace roboads::scenario {
namespace {

double uniform(std::mt19937_64& engine, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine);
}

std::size_t uniform_index(std::mt19937_64& engine, std::size_t lo,
                          std::size_t hi) {
  return std::uniform_int_distribution<std::size_t>(lo, hi)(engine);
}

bool coin(std::mt19937_64& engine, double p = 0.5) {
  return uniform(engine, 0.0, 1.0) < p;
}

// Sensor magnitude scales are sized to the platforms' pose-like sensors
// (meters / radians): big enough to exercise alarms and quarantine, small
// enough that missions stay numerically ordinary.
Vector random_magnitude(std::mt19937_64& engine, AttackShape shape,
                        std::size_t dim, bool actuator) {
  std::vector<double> mag(dim, 0.0);
  const double span = actuator ? 0.6 : 0.3;
  for (double& m : mag) {
    switch (shape) {
      case AttackShape::kBias:
      case AttackShape::kReplace:
        if (coin(engine, 0.7)) m = uniform(engine, -span, span);
        break;
      case AttackShape::kRamp:
        if (coin(engine, 0.7)) m = uniform(engine, -0.01, 0.01);
        break;
      case AttackShape::kScale:
        m = uniform(engine, 0.5, 1.8);
        break;
      case AttackShape::kNoise:
        if (coin(engine, 0.7)) m = uniform(engine, 0.0, 0.2);
        break;
      case AttackShape::kFreeze:
      case AttackShape::kFlatObstruction:
        break;
    }
  }
  return Vector(std::move(mag));
}

AttackSpec random_attack(std::mt19937_64& engine,
                         const eval::Platform& eval_platform,
                         const PlatformTraits& traits,
                         std::size_t iterations) {
  AttackSpec attack;

  // Target: sensors carry most of the taxonomy, so weight them.
  const double roll = uniform(engine, 0.0, 1.0);
  if (roll < 0.55) {
    attack.target = Target::kSensor;
    const sensors::SensorSuite& suite = eval_platform.suite();
    const std::size_t i = uniform_index(engine, 0, suite.count() - 1);
    attack.workflow = suite.sensor(i).name();
  } else if (roll < 0.75 && traits.lidar_beams > 0) {
    attack.target = Target::kLidarRaw;
    attack.workflow = "lidar";
  } else {
    attack.target = Target::kActuator;
    attack.workflow = traits.actuator_workflow;
  }

  attack.onset = uniform_index(engine, 1, iterations - 1);
  attack.duration =
      coin(engine) ? kForever : uniform_index(engine, 1, iterations);

  const std::size_t dim =
      attack.target == Target::kSensor
          ? eval_platform.suite()
                .sensor(eval_platform.suite().index_of(attack.workflow))
                .dim()
          : (attack.target == Target::kLidarRaw ? traits.lidar_beams
                                                : traits.actuator_dim);

  // Shape: raw LiDAR gets the DoS/obstruction classes, everything else the
  // additive/multiplicative/freeze taxonomy.
  if (attack.target == Target::kLidarRaw) {
    if (coin(engine, 0.4)) {
      attack.shape = AttackShape::kFlatObstruction;
      // Narrow sectors keep the flat-board geometry valid for any position.
      const std::size_t max_width = std::max<std::size_t>(1, dim / 8);
      const std::size_t width = uniform_index(engine, 1, max_width);
      attack.first_beam = uniform_index(engine, 0, dim - width);
      attack.last_beam = attack.first_beam + width;
      attack.distance = uniform(engine, 0.05, 0.5);
    } else {
      attack.shape = AttackShape::kReplace;
      attack.magnitude = Vector{coin(engine) ? 0.0
                                             : uniform(engine, 0.0, 2.0)};
    }
    return attack;
  }

  constexpr AttackShape kShapes[] = {AttackShape::kBias, AttackShape::kRamp,
                                     AttackShape::kFreeze,
                                     AttackShape::kReplace,
                                     AttackShape::kScale, AttackShape::kNoise};
  attack.shape = kShapes[uniform_index(engine, 0, 5)];
  if (attack.shape == AttackShape::kFreeze) return attack;

  attack.magnitude = random_magnitude(engine, attack.shape, dim,
                                      attack.target == Target::kActuator);
  if (attack.shape == AttackShape::kReplace && coin(engine)) {
    std::vector<bool> mask(dim);
    for (std::size_t i = 0; i < dim; ++i) mask[i] = coin(engine);
    attack.mask = std::move(mask);
  }
  if (attack.shape == AttackShape::kNoise) {
    attack.noise_seed = engine();
  }
  return attack;
}

// Transport faults are benign by construction, so the generator keeps rates
// modest: enough traffic disruption to stress the detector's tolerance, not
// enough to starve the mission of readings outright.
FaultSpec random_fault(std::mt19937_64& engine, const std::string& sensor,
                       std::size_t iterations) {
  FaultSpec fault;
  fault.sensor = sensor;
  if (coin(engine, 0.6)) fault.drop_rate = uniform(engine, 0.0, 0.15);
  if (coin(engine, 0.5)) fault.stale_rate = uniform(engine, 0.0, 0.15);
  if (coin(engine, 0.4)) fault.duplicate_rate = uniform(engine, 0.0, 0.1);
  if (coin(engine, 0.3) && iterations > 2) {
    fault.freeze_at = uniform_index(engine, 1, iterations - 1);
    fault.freeze_duration =
        uniform_index(engine, 1, std::max<std::size_t>(1, iterations / 8));
  }
  return fault;
}

bool all_finite(const Vector& v) { return v.all_finite(); }

std::string at_iteration(std::size_t k) {
  return " at iteration " + std::to_string(k);
}

}  // namespace

ScenarioSpec random_campaign(std::mt19937_64& engine,
                             const std::string& platform, std::size_t index,
                             const FuzzConfig& config) {
  const std::unique_ptr<eval::Platform> eval_platform =
      make_platform(platform);
  const PlatformTraits traits = platform_traits(platform);

  ScenarioSpec spec;
  spec.name = "fuzz-" + std::to_string(index);
  spec.description = "randomized campaign (scenario/fuzz.cc)";
  spec.platform = platform;
  spec.iterations = config.iterations;
  spec.seed = engine();
  const std::size_t count =
      uniform_index(engine, 1, std::max<std::size_t>(1, config.max_attacks));
  for (std::size_t i = 0; i < count; ++i) {
    spec.attacks.push_back(
        random_attack(engine, *eval_platform, traits, spec.iterations));
  }
  if (config.fault_probability > 0.0 &&
      coin(engine, config.fault_probability)) {
    const sensors::SensorSuite& suite = eval_platform->suite();
    // One or two distinct sensors, chosen without replacement.
    const std::size_t faulted =
        std::min<std::size_t>(uniform_index(engine, 1, 2), suite.count());
    std::vector<std::size_t> picked;
    while (picked.size() < faulted) {
      const std::size_t i = uniform_index(engine, 0, suite.count() - 1);
      if (std::find(picked.begin(), picked.end(), i) == picked.end()) {
        picked.push_back(i);
      }
    }
    for (std::size_t i : picked) {
      spec.faults.push_back(
          random_fault(engine, suite.sensor(i).name(), spec.iterations));
    }
    spec.fault_seed = engine();
  }
  return spec;
}

std::optional<InvariantViolation> check_campaign(
    const ScenarioSpec& spec, const obs::Instruments& instruments) {
  const auto fail = [](std::string invariant, std::string detail) {
    return InvariantViolation{std::move(invariant), std::move(detail)};
  };

  std::unique_ptr<eval::Platform> platform;
  eval::MissionResult result;
  try {
    platform = make_platform(spec.platform);
    const attacks::Scenario scenario =
        compile_spec(spec, *platform, platform_traits(spec.platform));
    eval::MissionConfig config;
    config.iterations = spec.iterations;
    config.seed = spec.seed;
    config.transport_faults = transport_faults_of(spec, *platform);
    config.instruments = instruments;
    result = eval::run_mission(*platform, scenario, config);
  } catch (const SpecError& e) {
    return fail("spec-rejected", e.what());
  } catch (const std::exception& e) {
    return fail("mission-crash", e.what());
  }

  const sensors::SensorSuite& suite = platform->suite();
  for (const eval::IterationRecord& rec : result.records) {
    const core::DetectionReport& report = rec.report;
    const core::Decision& decision = report.decision;

    // NaN escape: every number the planner or a downstream consumer reads
    // must be finite.
    if (!all_finite(rec.x_true) || !all_finite(rec.z) ||
        !all_finite(rec.u_executed)) {
      return fail("nan-escape", "non-finite simulation output" +
                                    at_iteration(rec.k));
    }
    if (!all_finite(report.state_estimate)) {
      return fail("nan-escape",
                  "non-finite state estimate" + at_iteration(rec.k));
    }
    if (!std::isfinite(decision.sensor_statistic) ||
        !std::isfinite(decision.actuator_statistic)) {
      return fail("nan-escape",
                  "non-finite test statistic" + at_iteration(rec.k));
    }

    // Quarantine implies a health event and the counts agree.
    const std::size_t quarantined = static_cast<std::size_t>(std::count(
        report.mode_health.begin(), report.mode_health.end(),
        core::ModeHealthState::kQuarantined));
    if (quarantined != report.quarantined_modes) {
      std::ostringstream os;
      os << "quarantined_modes=" << report.quarantined_modes << " but "
         << quarantined << " modes report kQuarantined" << at_iteration(rec.k);
      return fail("quarantine-health-mismatch", os.str());
    }

    // Attribution consistency: confirmed sensors only under an alarm,
    // sorted/unique/in-range, and each backed by a misbehaving verdict.
    const std::vector<std::size_t>& accused = decision.misbehaving_sensors;
    if (!accused.empty() && !decision.sensor_alarm) {
      return fail("attribution-without-alarm",
                  "misbehaving_sensors non-empty with sensor_alarm=false" +
                      at_iteration(rec.k));
    }
    if (!std::is_sorted(accused.begin(), accused.end()) ||
        std::adjacent_find(accused.begin(), accused.end()) != accused.end()) {
      return fail("attribution-order",
                  "misbehaving_sensors not sorted-unique" +
                      at_iteration(rec.k));
    }
    for (std::size_t index : accused) {
      if (index >= suite.count()) {
        return fail("attribution-range",
                    "misbehaving sensor index " + std::to_string(index) +
                        " out of suite range" + at_iteration(rec.k));
      }
      const bool backed = std::any_of(
          decision.sensor_verdicts.begin(), decision.sensor_verdicts.end(),
          [&](const core::SensorVerdict& v) {
            return v.sensor_index == index && v.misbehaving;
          });
      if (!backed) {
        return fail("attribution-unbacked",
                    "accused sensor " + std::to_string(index) +
                        " has no misbehaving verdict" + at_iteration(rec.k));
      }
    }

    // Compiler cross-check: the truth the mission recorded (from the
    // compiled injectors' windows) must match the truth derived from the
    // spec alone, after applying the mission's own post-processing — the
    // actuator-significance gate and collision folding (eval/mission.cc).
    attacks::GroundTruth expected = spec_truth_at(spec, rec.k, suite);
    if (expected.actuator_corrupted &&
        (rec.u_executed - rec.u_planned).norm_inf() <
            platform->actuator_significance()) {
      expected.actuator_corrupted = false;
    }
    if (rec.collided) expected.actuator_corrupted = true;
    if (!(expected == rec.truth)) {
      return fail("truth-mismatch",
                  "compiled scenario truth diverges from spec truth" +
                      at_iteration(rec.k));
    }
  }
  return std::nullopt;
}

namespace {

// True when `candidate` is valid and still reproduces `violation` (same
// invariant identifier; details like iteration numbers may move).
bool reproduces(const ScenarioSpec& candidate,
                const InvariantViolation& violation,
                const CampaignCheck& check, std::size_t* missions_spent) {
  try {
    validate_spec(candidate);
  } catch (const SpecError&) {
    return false;
  }
  if (missions_spent) ++*missions_spent;
  const std::optional<InvariantViolation> got = check(candidate);
  return got && got->invariant == violation.invariant;
}

}  // namespace

ScenarioSpec shrink_campaign(const ScenarioSpec& spec,
                             const InvariantViolation& violation,
                             std::size_t budget,
                             std::size_t* missions_spent) {
  return shrink_campaign_with(spec, violation,
                              [](const ScenarioSpec& s) {
                                return check_campaign(s);
                              },
                              budget,
                              missions_spent);
}

ScenarioSpec shrink_campaign_with(const ScenarioSpec& spec,
                                  const InvariantViolation& violation,
                                  const CampaignCheck& check,
                                  std::size_t budget,
                                  std::size_t* missions_spent) {
  ScenarioSpec best = spec;
  std::size_t spent = 0;
  const auto in_budget = [&] { return spent < budget; };
  const auto try_candidate = [&](ScenarioSpec candidate) {
    if (!in_budget()) return false;
    if (!reproduces(candidate, violation, check, &spent)) return false;
    best = std::move(candidate);
    return true;
  };

  bool progress = true;
  while (progress && in_budget()) {
    progress = false;

    // 1. Drop whole attacks (largest structural win first).
    for (std::size_t i = best.attacks.size(); i-- > 0 && in_budget();) {
      if (best.attacks.size() <= 1) break;
      ScenarioSpec candidate = best;
      candidate.attacks.erase(candidate.attacks.begin() +
                              static_cast<std::ptrdiff_t>(i));
      progress |= try_candidate(std::move(candidate));
    }

    // 1b. Drop whole fault stanzas — findings that reproduce without the
    // transport layer shrink back to pure attack campaigns.
    for (std::size_t i = best.faults.size(); i-- > 0 && in_budget();) {
      ScenarioSpec candidate = best;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      progress |= try_candidate(std::move(candidate));
    }

    // 2. Halve the mission (respecting every onset).
    while (in_budget() && best.iterations > 2) {
      std::size_t max_onset = 0;
      for (const AttackSpec& a : best.attacks) {
        max_onset = std::max(max_onset, a.onset);
      }
      for (const FaultSpec& f : best.faults) {
        if (f.freeze_duration > 0) max_onset = std::max(max_onset, f.freeze_at);
      }
      const std::size_t shorter =
          std::max(max_onset + 1, best.iterations / 2);
      if (shorter >= best.iterations) break;
      ScenarioSpec candidate = best;
      candidate.iterations = shorter;
      if (!try_candidate(std::move(candidate))) break;
      progress = true;
    }

    // 3. Simplify each attack: forever duration, onset 1, zeroed magnitude
    // components, dropped mask.
    for (std::size_t i = 0; i < best.attacks.size() && in_budget(); ++i) {
      if (best.attacks[i].duration != kForever) {
        ScenarioSpec candidate = best;
        candidate.attacks[i].duration = kForever;
        progress |= try_candidate(std::move(candidate));
      }
      if (best.attacks[i].onset > 1) {
        ScenarioSpec candidate = best;
        candidate.attacks[i].onset = 1;
        progress |= try_candidate(std::move(candidate));
      }
      if (!best.attacks[i].mask.empty()) {
        ScenarioSpec candidate = best;
        candidate.attacks[i].mask.clear();
        progress |= try_candidate(std::move(candidate));
      }
      const double neutral =
          best.attacks[i].shape == AttackShape::kScale ? 1.0 : 0.0;
      for (std::size_t c = 0;
           c < best.attacks[i].magnitude.size() && in_budget(); ++c) {
        if (best.attacks[i].magnitude[c] == neutral) continue;
        ScenarioSpec candidate = best;
        candidate.attacks[i].magnitude[c] = neutral;
        progress |= try_candidate(std::move(candidate));
      }
    }

    // 4. Simplify each surviving fault stanza: zero individual rates, drop
    // the freeze window.
    for (std::size_t i = 0; i < best.faults.size() && in_budget(); ++i) {
      const auto zero_rate = [&](double FaultSpec::*rate) {
        if (best.faults[i].*rate == 0.0) return;
        ScenarioSpec candidate = best;
        candidate.faults[i].*rate = 0.0;
        progress |= try_candidate(std::move(candidate));
      };
      zero_rate(&FaultSpec::drop_rate);
      zero_rate(&FaultSpec::stale_rate);
      zero_rate(&FaultSpec::duplicate_rate);
      if (best.faults[i].freeze_duration > 0) {
        ScenarioSpec candidate = best;
        candidate.faults[i].freeze_at = 0;
        candidate.faults[i].freeze_duration = 0;
        progress |= try_candidate(std::move(candidate));
      }
    }
  }

  if (missions_spent) *missions_spent += spent;
  return best;
}

FuzzReport run_fuzzer(const FuzzConfig& config) {
  FuzzReport report;
  if (config.campaigns == 0 || config.platforms.empty()) return report;

  // Generate serially so campaign i is a pure function of (seed, i),
  // independent of thread count and of every other campaign.
  std::vector<ScenarioSpec> specs;
  specs.reserve(config.campaigns);
  for (std::size_t i = 0; i < config.campaigns; ++i) {
    std::mt19937_64 engine(config.seed * 0x9e3779b97f4a7c15ULL + i);
    const std::string& platform =
        config.platforms[i % config.platforms.size()];
    specs.push_back(random_campaign(engine, platform, i, config));
  }

  // Fly contained: a crash inside check_campaign's mission is caught there;
  // anything escaping (a non-std failure path) is contained by the runner
  // and reported as a mission-crash finding too.
  std::vector<std::optional<InvariantViolation>> outcomes(specs.size());
  sim::WorkflowConfig workflow;
  workflow.num_threads = config.num_threads;
  sim::ScenarioBatchRunner runner(workflow);
  const std::vector<sim::TaskFailure> failures = runner.run_contained(
      specs.size(),
      [&](std::size_t i) { outcomes[i] = check_campaign(specs[i]); });
  for (const sim::TaskFailure& failure : failures) {
    outcomes[failure.index] =
        InvariantViolation{"mission-crash", failure.what};
  }

  report.campaigns_run = specs.size();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!outcomes[i]) continue;
    FuzzFinding finding;
    finding.campaign_index = i;
    finding.violation = *outcomes[i];
    finding.spec = specs[i];
    finding.shrunk = shrink_campaign(specs[i], *outcomes[i],
                                     config.shrink_budget,
                                     &report.shrink_missions);
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace roboads::scenario
