// Lowers ScenarioSpecs onto the existing attacks:: injectors and the
// evaluation platforms, with full semantic validation (SpecError on any
// invalid spec — unknown platform or workflow, onset beyond the mission
// horizon, zero duration, magnitude dimension mismatch). The compiled
// attacks::Scenario is proven bit-identical to the hand-written enum
// batteries by tests/scenario_equivalence_test.cc.
#pragma once

#include <memory>

#include "eval/batch.h"
#include "eval/platform.h"
#include "scenario/spec.h"
#include "sim/faults.h"

namespace roboads::scenario {

// What the compiler needs to know about a platform beyond its Platform
// interface: the actuation workflow's name and command dimension, and the
// raw-scan geometry for LiDAR attacks.
struct PlatformTraits {
  std::string actuator_workflow;
  std::size_t actuator_dim = 0;
  std::size_t lidar_beams = 0;  // 0 = platform has no raw-scan target
  double lidar_fov = 0.0;
};

// Known platform names, in registry order.
std::vector<std::string> platform_names();

// Builds a fresh default-configured platform; throws SpecError for unknown
// names.
std::unique_ptr<eval::Platform> make_platform(const std::string& name);

PlatformTraits platform_traits(const std::string& name);

// Validates `spec` against the platform and compiles it into a Scenario
// with fresh stateful injectors (build one per mission run, like the enum
// battery factories). Attachment order follows spec.attacks order so the
// compiled scenario is injector-for-injector identical to a hand-built one.
attacks::Scenario compile_spec(const ScenarioSpec& spec,
                               const eval::Platform& platform,
                               const PlatformTraits& traits);

// Convenience: builds the platform from spec.platform, compiles, and
// discards the platform. Use the three-argument overload when running
// missions (the mission needs the same platform instance).
attacks::Scenario compile_spec(const ScenarioSpec& spec);

// Validation without constructing injectors; throws SpecError on the first
// problem, returns normally for a compilable spec. Covers the faults stanza
// too (unknown sensors, out-of-range rates, freeze windows without an
// onset), so fault errors surface as SpecErrors before the transport model's
// internal CheckErrors can fire.
void validate_spec(const ScenarioSpec& spec);

// Lowers the spec's faults stanza onto the bus-layer transport-fault model.
// Inactive (empty) config when the spec carries no faults, so the no-fault
// mission path stays bit-identical to pre-fault code. Throws SpecError on an
// invalid stanza.
sim::TransportFaultConfig transport_faults_of(const ScenarioSpec& spec,
                                              const eval::Platform& platform);
sim::TransportFaultConfig transport_faults_of(const ScenarioSpec& spec);

// One compiled-and-flown spec: mission + score on a fresh default platform,
// deterministic per spec.seed.
struct SpecRun {
  std::string name;
  eval::MissionResult result;
  eval::ScenarioScore score;
};

SpecRun run_spec(const ScenarioSpec& spec);

// True when any non-actuator (resp. actuator) misbehavior was correctly
// detected per the score's delay records — the frontier and fuzzer's
// "caught" predicate, shared with bench/evasive_attacks' original logic.
bool sensor_detected(const eval::ScenarioScore& score);
bool actuator_detected(const eval::ScenarioScore& score);

}  // namespace roboads::scenario
