// Stealth-frontier search (paper §V-H generalized): per attack class, find
// the boundary magnitude between "stealthy for the whole mission" and
// "caught" by bracketing + bisection over a one-parameter family of
// ScenarioSpecs. bench/stealth_frontier drives the standard taxonomy over
// both platforms and emits the frontier as JSONL (docs/SCENARIOS.md).
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "scenario/compile.h"

namespace roboads::scenario {

// A one-parameter attack family: make(m) yields the campaign at magnitude m
// (for freeze attacks m is the hold duration in iterations). Detection is
// assumed monotone in m over [lo, hi] up to noise; the driver verifies the
// bracket and expands it when the assumption fails at the endpoints.
struct FrontierAxis {
  std::string id;            // e.g. "ips-bias-x"
  std::string attack_class;  // bias | ramp | scale | freeze | noise
  std::string platform;
  std::string channel;  // "sensor" or "actuator": which alarm counts
  std::string unit;     // of the magnitude, for reporting
  double lo = 0.0;      // expected-stealthy starting magnitude
  double hi = 0.0;      // expected-caught starting magnitude
  std::function<ScenarioSpec(double)> make;
};

struct FrontierProbe {
  double magnitude = 0.0;
  bool detected = false;
  std::optional<double> delay_seconds;
};

struct FrontierResult {
  std::string id, attack_class, platform, channel, unit;
  // The bisected boundary: the largest probed magnitude that stayed
  // alarm-silent all mission and the smallest that was caught.
  double undetected_max = 0.0;
  double caught_min = 0.0;
  std::optional<double> delay_at_caught_seconds;
  std::vector<FrontierProbe> probes;  // in probing order
  // Set when even the expanded bracket never produced the corresponding
  // outcome (e.g. an attack class the detector always catches).
  bool all_detected = false;
  bool none_detected = false;
};

struct FrontierConfig {
  std::size_t bisection_steps = 7;
  std::size_t max_bracket_expansions = 5;
  std::uint64_t seed = 7700;        // mission seed for every probe
  std::size_t iterations = 250;
};

// Bisects one axis; every probe is a full deterministic mission.
FrontierResult map_frontier(const FrontierAxis& axis,
                            const FrontierConfig& config = {});

// The bisection core with the mission evaluation injected — what
// map_frontier runs, unit-testable against a synthetic detector
// (tests/scenario_frontier_test.cc). `probe` returns the detection outcome
// at a magnitude; axis.make is not called.
using ProbeFn = std::function<FrontierProbe(double)>;
FrontierResult map_frontier_with(const FrontierAxis& axis,
                                 const ProbeFn& probe,
                                 const FrontierConfig& config = {});

// The standard taxonomy for a platform: bias/ramp/scale/freeze/noise on
// representative sensors plus bias/scale on the actuator.
std::vector<FrontierAxis> standard_axes(const std::string& platform);

// One JSONL object per result (schema "roboads-frontier" v1), parseable
// line-by-line like every other artifact in docs/OBSERVABILITY.md.
void write_frontier_jsonl(std::ostream& os,
                          const std::vector<FrontierResult>& results);

}  // namespace roboads::scenario
