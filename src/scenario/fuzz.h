// Coverage fuzzer for the detection pipeline: randomizes attack campaigns
// over the DSL, flies each one as a contained mission, and checks system
// invariants that must hold for *any* valid spec — not detection quality,
// but structural soundness. Violations are shrunk to minimal replayable
// specs suitable for tests/data/fuzz_corpus/ (docs/SCENARIOS.md describes
// the promotion workflow; ./ci.sh fuzz-smoke runs a time-boxed sweep).
//
// Invariants checked per campaign:
//   - the generated spec compiles (the generator emits only valid specs);
//   - the mission completes — no crash, no MissionError;
//   - no NaN escape: ground truth, readings, state estimates and χ²
//     statistics stay finite every iteration;
//   - quarantine implies a health event: the reported quarantined_modes
//     count equals the number of kQuarantined entries in mode_health;
//   - alarm attribution is consistent: misbehaving_sensors only under an
//     active sensor alarm, sorted, unique, in suite range, and matching the
//     per-sensor verdicts;
//   - compiled ground truth matches the spec: the mission's recorded
//     truth_at equals spec_truth_at for every iteration (compiler
//     cross-check, independent path through the attack windows).
#pragma once

#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "scenario/compile.h"

namespace roboads::scenario {

struct FuzzConfig {
  std::uint64_t seed = 1;
  std::size_t campaigns = 50;       // random campaigns per run
  std::size_t iterations = 120;     // mission length of generated campaigns
  std::size_t max_attacks = 3;      // attacks per campaign, 1..max
  std::vector<std::string> platforms = {"khepera", "tamiya"};
  std::size_t num_threads = 0;      // WorkflowConfig semantics (0 = auto)
  std::size_t shrink_budget = 120;  // extra missions allowed per shrink
  // P(a campaign carries a faults stanza): transport drop/stale/duplicate/
  // freeze composed under the attacks (ROADMAP "fuzzing under transport
  // faults"). 0 restores attack-only fuzzing.
  double fault_probability = 0.35;
};

// One failed invariant: `invariant` is a stable identifier (e.g.
// "nan-escape", "truth-mismatch"), `detail` the human-readable specifics.
struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

struct FuzzFinding {
  std::size_t campaign_index = 0;
  InvariantViolation violation;
  ScenarioSpec spec;    // the campaign as generated
  ScenarioSpec shrunk;  // greedily minimized reproducer (same invariant)
};

struct FuzzReport {
  std::size_t campaigns_run = 0;
  std::size_t shrink_missions = 0;  // missions spent minimizing findings
  std::vector<FuzzFinding> findings;
  bool clean() const { return findings.empty(); }
};

// Deterministic campaign generator: always yields a spec that passes
// validate_spec. `index` picks the platform round-robin and names the spec.
ScenarioSpec random_campaign(std::mt19937_64& engine,
                             const std::string& platform, std::size_t index,
                             const FuzzConfig& config);

// Compiles and flies `spec`, checks every invariant above; nullopt = clean.
// `instruments` only records timings/counters (telemetry) — it cannot
// change the verdict.
std::optional<InvariantViolation> check_campaign(
    const ScenarioSpec& spec, const obs::Instruments& instruments = {});

// Greedy shrink: repeatedly tries dropping attacks, shortening the mission,
// zeroing magnitude components and simplifying windows, keeping any
// candidate that still reproduces the same invariant violation. Spends at
// most `budget` missions; returns `spec` unchanged if nothing smaller
// reproduces.
ScenarioSpec shrink_campaign(const ScenarioSpec& spec,
                             const InvariantViolation& violation,
                             std::size_t budget,
                             std::size_t* missions_spent = nullptr);

// The shrink loop with the invariant check injected — unit-testable
// against synthetic violations (tests/scenario_fuzz_test.cc). Candidates
// still must pass validate_spec before `check` is consulted.
using CampaignCheck =
    std::function<std::optional<InvariantViolation>(const ScenarioSpec&)>;
ScenarioSpec shrink_campaign_with(const ScenarioSpec& spec,
                                  const InvariantViolation& violation,
                                  const CampaignCheck& check,
                                  std::size_t budget,
                                  std::size_t* missions_spent = nullptr);

// Full run: generate, fly contained (campaign order never depends on the
// worker count), shrink each finding. Deterministic per config.
FuzzReport run_fuzzer(const FuzzConfig& config);

}  // namespace roboads::scenario
