#include "core/observability.h"

#include "matrix/decomp.h"

namespace roboads::core {

ModeDiagnostics diagnose_mode(const dyn::DynamicModel& model,
                              const sensors::SensorSuite& suite,
                              const Mode& mode, const Vector& x,
                              const Vector& u, std::size_t horizon) {
  validate_modes({mode}, suite);
  const std::size_t n = model.state_dim();
  const std::size_t q = model.input_dim();
  if (horizon == 0) horizon = n;

  ModeDiagnostics out;
  out.mode_label = mode.label;

  const Matrix a = model.jacobian_state(x, u);
  const Matrix g = model.jacobian_input(x, u);
  const Matrix c2 = suite.jacobian(mode.reference, x);

  // Local observability matrix [C; CA; CA²; ...].
  Matrix obs;
  Matrix a_power = Matrix::identity(n);
  for (std::size_t i = 0; i < horizon; ++i) {
    obs = obs.vstack(c2 * a_power);
    a_power = a_power * a;
  }
  out.observability_rank = rank(obs);
  out.observable = out.observability_rank == n;

  // Noise-whitened input visibility: R₂^{-1/2} C₂ G. Whitening by the
  // measurement noise makes the conditioning number meaningful across
  // heterogeneous sensors.
  const Matrix r2 = suite.noise_covariance(mode.reference);
  Cholesky chol(r2);
  Matrix f = c2 * g;
  if (chol.ok()) {
    // Solve L W = F for W = L⁻¹ F (the whitened visibility matrix).
    Matrix w(f.rows(), f.cols());
    for (std::size_t j = 0; j < f.cols(); ++j) {
      // Forward substitution against the Cholesky factor.
      Vector col = f.col(j);
      const Matrix& l = chol.l();
      Vector y(col.size());
      for (std::size_t i = 0; i < col.size(); ++i) {
        double acc = col[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
      }
      for (std::size_t i = 0; i < col.size(); ++i) w(i, j) = y[i];
    }
    f = w;
  }
  const Svd s = svd(f);
  out.input_rank = rank(f);
  out.input_identifiable = out.input_rank == q;
  const double smax = s.sigma.size() ? s.sigma[0] : 0.0;
  const double smin = s.sigma.size() ? s.sigma[s.sigma.size() - 1] : 0.0;
  out.input_conditioning = smax > 0.0 ? smin / smax : 0.0;
  return out;
}

std::vector<ModeDiagnostics> diagnose_modes(
    const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
    const std::vector<Mode>& modes, const Vector& x, const Vector& u,
    bool throw_on_unobservable) {
  std::vector<ModeDiagnostics> out;
  out.reserve(modes.size());
  for (const Mode& m : modes) {
    out.push_back(diagnose_mode(model, suite, m, x, u));
    if (throw_on_unobservable) {
      ROBOADS_CHECK(out.back().observable,
                    "mode '" + m.label +
                        "' cannot reconstruct the state from its "
                        "reference sensors (see §VI)");
    }
  }
  return out;
}

}  // namespace roboads::core
