// Linear-system baseline for the §V-G benchmark.
//
// The paper compares RoboADS against a representative linear approach
// ([20], Yong-Zhu-Frazzoli style) "where a robot is linearized only once at
// the beginning". We reproduce that comparator by freezing the linearization
// point: the baseline sees the *affine* models
//
//   f̃(x, u) = f(x₀, u₀) + A₀(x − x₀) + G₀(u − u₀)
//   h̃_i(x)  = h_i(x₀)   + C_{i,0}(x − x₀)
//
// and runs the exact same multi-mode estimation pipeline on them, so the
// only difference measured is per-iteration relinearization vs one-time
// linearization — the capability §V-G isolates.
#pragma once

#include <memory>

#include "dynamics/model.h"
#include "sensors/sensor_model.h"

namespace roboads::core {

// DynamicModel frozen at a linearization point (x0, u0).
class FrozenLinearModel final : public dyn::DynamicModel {
 public:
  FrozenLinearModel(const dyn::DynamicModel& nonlinear, const Vector& x0,
                    const Vector& u0);

  std::string name() const override { return name_; }
  std::size_t state_dim() const override { return a_.rows(); }
  std::size_t input_dim() const override { return g_.cols(); }
  double dt() const override { return dt_; }
  std::size_t heading_index() const override { return heading_index_; }

  Vector step(const Vector& x, const Vector& u) const override;
  Matrix jacobian_state(const Vector&, const Vector&) const override {
    return a_;
  }
  Matrix jacobian_input(const Vector&, const Vector&) const override {
    return g_;
  }

 private:
  std::string name_;
  double dt_;
  std::size_t heading_index_;
  Vector x0_, u0_, f0_;
  Matrix a_, g_;
};

// SensorModel frozen at a state linearization point x0.
class FrozenLinearSensor final : public sensors::SensorModel {
 public:
  FrozenLinearSensor(sensors::SensorPtr nonlinear, const Vector& x0);

  std::string name() const override { return inner_->name(); }
  std::size_t dim() const override { return inner_->dim(); }
  std::size_t state_dim() const override { return inner_->state_dim(); }

  Vector measure(const Vector& x) const override;
  Matrix jacobian(const Vector&) const override { return c_; }
  const Matrix& noise_covariance() const override {
    return inner_->noise_covariance();
  }
  std::vector<bool> angle_mask() const override {
    return inner_->angle_mask();
  }

 private:
  sensors::SensorPtr inner_;
  Vector x0_, h0_;
  Matrix c_;
};

// Builds the frozen suite corresponding to `suite` at state x0.
sensors::SensorSuite freeze_suite(const sensors::SensorSuite& suite,
                                  const Vector& x0);

}  // namespace roboads::core
