#include "core/nuise.h"

#include <algorithm>

#include "matrix/decomp.h"
#include "obs/timer.h"
#include "stats/gaussian.h"

namespace roboads::core {

NuiseStageTimers NuiseStageTimers::resolve(obs::MetricsRegistry* metrics) {
  NuiseStageTimers t;
  if (metrics == nullptr) return t;
  t.input_estimation = &metrics->histogram("nuise.input_estimation_ns");
  t.predict = &metrics->histogram("nuise.predict_ns");
  t.correct = &metrics->histogram("nuise.correct_ns");
  t.sensor_anomaly = &metrics->histogram("nuise.sensor_anomaly_ns");
  t.likelihood = &metrics->histogram("nuise.likelihood_ns");
  return t;
}

Nuise::Nuise(const dyn::DynamicModel& model,
             const sensors::SensorSuite& suite, Mode mode, Matrix process_cov)
    : model_(model),
      suite_(suite),
      mode_(std::move(mode)),
      process_cov_(std::move(process_cov)) {
  validate_modes({mode_}, suite_);
  ROBOADS_CHECK(process_cov_.rows() == model_.state_dim() &&
                    process_cov_.cols() == model_.state_dim(),
                "process covariance shape mismatch");
  ROBOADS_CHECK(process_cov_.is_symmetric(1e-8),
                "process covariance must be symmetric");
  if (suite_.count() > 0) {
    ROBOADS_CHECK_EQ(suite_.sensor(0).state_dim(), model_.state_dim(),
                     "suite and model disagree on state dimension");
  }
}

NuiseResult Nuise::step(const Vector& x_prev, const Matrix& p_prev,
                        const Vector& u_prev, const Vector& z_full) const {
  return step_subsets(mode_.reference, mode_.testing, x_prev, p_prev, u_prev,
                      z_full);
}

NuiseResult Nuise::step(const Vector& x_prev, const Matrix& p_prev,
                        const Vector& u_prev, const Vector& z_full,
                        const SensorMask& available) const {
  if (available.empty()) return step(x_prev, p_prev, u_prev, z_full);
  ROBOADS_CHECK_EQ(available.size(), suite_.count(),
                   "availability mask size mismatch");

  auto filter = [&](const std::vector<std::size_t>& set) {
    std::vector<std::size_t> kept;
    kept.reserve(set.size());
    for (std::size_t i : set) {
      if (available[i]) kept.push_back(i);
    }
    return kept;
  };
  const std::vector<std::size_t> ref = filter(mode_.reference);
  const std::vector<std::size_t> tst = filter(mode_.testing);

  if (ref.size() == mode_.reference.size() &&
      tst.size() == mode_.testing.size()) {
    // Every sensor of this mode arrived: the exact full step.
    return step(x_prev, p_prev, u_prev, z_full);
  }
  if (ref.empty()) {
    return predict_only(tst, x_prev, p_prev, u_prev, z_full);
  }
  NuiseResult out = step_subsets(ref, tst, x_prev, p_prev, u_prev, z_full);
  out.degraded = true;
  out.active_testing = tst;
  return out;
}

NuiseResult Nuise::predict_only(const std::vector<std::size_t>& tst,
                                const Vector& x_prev, const Matrix& p_prev,
                                const Vector& u_prev,
                                const Vector& z_full) const {
  const std::size_t q = model_.input_dim();
  ROBOADS_CHECK_EQ(x_prev.size(), model_.state_dim(),
                   "previous state size mismatch");
  ROBOADS_CHECK_EQ(u_prev.size(), q, "control size mismatch");

  NuiseResult out;
  out.correction_applied = false;
  out.likelihood_informative = false;
  out.degraded = true;
  out.active_testing = tst;

  obs::SplitTimer split(timers_ != nullptr && timers_->any());

  // Propagate through the kinematics with the planned (uncompensated)
  // input: with no reference readings there is no innovation to estimate
  // d̂ᵃ from, so the best available state is the open-loop prediction.
  const Matrix a = model_.jacobian_state(x_prev, u_prev);
  out.state = model_.step(x_prev, u_prev);
  out.state_cov =
      (a * p_prev * a.transpose() + process_cov_).symmetrized();

  // No information about the actuator this iteration: a zero estimate with
  // identity covariance makes the decision maker's χ² statistic exactly 0.
  out.actuator_anomaly = Vector(q);
  out.actuator_anomaly_cov = Matrix::identity(q);
  out.actuator_identifiable = false;
  split.lap(timers_ != nullptr ? timers_->predict : nullptr);

  // Testing sensors that did arrive are still screened against the
  // prediction; the wider Pˣ of the open-loop step is accounted for in the
  // anomaly covariance.
  if (!tst.empty()) {
    const Vector z1 = suite_.slice(tst, z_full);
    out.sensor_anomaly = suite_.residual(tst, z1, out.state);
    const Matrix c1 = suite_.jacobian(tst, out.state);
    const Matrix r1 = suite_.noise_covariance(tst);
    out.sensor_anomaly_cov =
        (c1 * out.state_cov * c1.transpose() + r1).symmetrized();
  }
  split.lap(timers_ != nullptr ? timers_->sensor_anomaly : nullptr);
  out.log_likelihood = 0.0;  // placeholder; flagged uninformative
  return out;
}

NuiseResult Nuise::step_subsets(const std::vector<std::size_t>& ref,
                                const std::vector<std::size_t>& tst,
                                const Vector& x_prev, const Matrix& p_prev,
                                const Vector& u_prev,
                                const Vector& z_full) const {
  const std::size_t n = model_.state_dim();
  const std::size_t q = model_.input_dim();
  ROBOADS_CHECK_EQ(x_prev.size(), n, "previous state size mismatch");
  ROBOADS_CHECK(p_prev.rows() == n && p_prev.cols() == n,
                "previous covariance shape mismatch");
  ROBOADS_CHECK_EQ(u_prev.size(), q, "control size mismatch");

  obs::SplitTimer split(timers_ != nullptr && timers_->any());

  const Matrix a = model_.jacobian_state(x_prev, u_prev);
  const Matrix g = model_.jacobian_input(x_prev, u_prev);
  const Matrix& qc = process_cov_;

  // --- Step 1: actuator anomaly estimation (lines 2-6). ---
  // Linearize h₂ at the uncompensated prediction f(x̂, u).
  const Vector x_bare = model_.step(x_prev, u_prev);
  const Matrix c2 = suite_.jacobian(ref, x_bare);
  const Matrix r2 = suite_.noise_covariance(ref);
  const Vector z2 = suite_.slice(ref, z_full);

  const Matrix p_tilde = (a * p_prev * a.transpose() + qc).symmetrized();
  const Matrix r_star =
      (c2 * p_tilde * c2.transpose() + r2).symmetrized();
  const Matrix r_star_inv = inverse_spd(r_star);

  const Matrix f = c2 * g;  // how the input shows in the reference readings
  const Matrix ft_rinv = f.transpose() * r_star_inv;
  const Matrix gram = (ft_rinv * f).symmetrized();

  NuiseResult out;
  out.actuator_identifiable = rank(gram) == q;
  // Eigen-thresholded pseudo-inverse: when the reference group
  // under-determines the input, this yields the minimum-norm estimate
  // instead of amplifying a numerically-tiny pivot.
  const Matrix gram_inv = spd_pseudo_inverse(gram);
  const Matrix m2 = gram_inv * ft_rinv;

  const Vector resid_bare = suite_.residual(ref, z2, x_bare);
  out.actuator_anomaly = m2 * resid_bare;
  out.actuator_anomaly_cov =
      (m2 * r_star * m2.transpose()).symmetrized();
  split.lap(timers_ != nullptr ? timers_->input_estimation : nullptr);

  // --- Step 2: state prediction with compensation (lines 7-10). ---
  // The compensated input is clamped to the actuator's physical range: an
  // executed command cannot lie outside it, and extrapolating the nonlinear
  // kinematics past it (e.g. tan of an unobservable steering estimate at
  // standstill) would destabilize the shared state estimate.
  // The compensation uses a shrunk estimate: the MAP of d̂ᵃ under a
  // zero-mean Gaussian prior whose scale is the model's linearization trust
  // radius. Where the estimate is sharp (Pᵃ ≪ trust²) this is full
  // compensation; where the innovation geometry makes d̂ᵃ noisy (e.g.
  // near-collinear speed/steering columns in a hard turn) the noise is
  // suppressed instead of extrapolating tan-type nonlinearities with it and
  // poisoning the shared state. Only the compensation is shrunk — the
  // reported estimate and its χ² statistic stay untouched.
  const Vector sat = model_.input_saturation();
  const Vector trust = model_.input_trust_radius();
  Vector trust_var(q);
  for (std::size_t i = 0; i < q; ++i) {
    trust_var[i] = std::min(trust[i] * trust[i], 1e12);
  }
  const Matrix t_prior = Matrix::diagonal(trust_var);
  const Vector delta =
      t_prior *
      (spd_pseudo_inverse(
           (out.actuator_anomaly_cov + t_prior).symmetrized()) *
       out.actuator_anomaly);
  Vector u_comp = u_prev;
  for (std::size_t i = 0; i < q; ++i) {
    const double step_i = std::clamp(delta[i], -3.0 * trust[i],
                                     3.0 * trust[i]);
    u_comp[i] = std::clamp(u_prev[i] + step_i, -sat[i], sat[i]);
  }
  const Vector x_pred = model_.step(x_prev, u_comp);
  const Matrix i_n = Matrix::identity(n);
  const Matrix gm2 = g * m2;
  const Matrix proj = i_n - gm2 * c2;  // (I − G M₂ C₂)
  const Matrix a_bar = proj * a;
  const Matrix q_bar = (proj * qc * proj.transpose() +
                        gm2 * r2 * gm2.transpose())
                           .symmetrized();
  const Matrix p_pred =
      (a_bar * p_prev * a_bar.transpose() + q_bar).symmetrized();
  split.lap(timers_ != nullptr ? timers_->predict : nullptr);

  // --- Step 3: state estimation (lines 11-14). ---
  // Relinearize h₂ at the compensated prediction.
  const Matrix c2p = suite_.jacobian(ref, x_pred);
  // Cross-covariance Ū = E[(x_k − x̂_{k|k−1}) ξ₂ᵀ] = −G M₂ R₂.
  const Matrix u_cross = -(gm2 * r2);
  const Matrix innov_cov = (c2p * p_pred * c2p.transpose() + r2 +
                            c2p * u_cross +
                            (c2p * u_cross).transpose())
                               .symmetrized();
  // The innovation covariance is *structurally* rank-deficient: the d̂ᵃ
  // compensation consumes q degrees of freedom of the reference innovation
  // (this is why line 20 of Algorithm 2 is written with pseudo-inverse and
  // pseudo-determinant). Invert on its support only.
  const Matrix gain = (p_pred * c2p.transpose() + u_cross) *
                      spd_pseudo_inverse(innov_cov);

  const Vector innovation = suite_.residual(ref, z2, x_pred);
  out.state = x_pred + gain * innovation;

  // Generalized Joseph form: exact for any gain, keeps Pˣ symmetric PSD.
  const Matrix ilc = i_n - gain * c2p;
  out.state_cov = (ilc * p_pred * ilc.transpose() +
                   gain * r2 * gain.transpose() -
                   ilc * u_cross * gain.transpose() -
                   gain * u_cross.transpose() * ilc.transpose())
                      .symmetrized();
  split.lap(timers_ != nullptr ? timers_->correct : nullptr);

  // --- Step 4: testing-sensor anomaly estimation (lines 15-16). ---
  if (!tst.empty()) {
    const Vector z1 = suite_.slice(tst, z_full);
    out.sensor_anomaly = suite_.residual(tst, z1, out.state);
    const Matrix c1 = suite_.jacobian(tst, out.state);
    const Matrix r1 = suite_.noise_covariance(tst);
    out.sensor_anomaly_cov =
        (c1 * out.state_cov * c1.transpose() + r1).symmetrized();
  }
  split.lap(timers_ != nullptr ? timers_->sensor_anomaly : nullptr);

  // --- Mode likelihood (lines 17-20). ---
  out.innovation = innovation;
  out.innovation_cov = innov_cov;
  out.log_likelihood =
      stats::degenerate_gaussian_log_pdf(innovation, innov_cov);
  split.lap(timers_ != nullptr ? timers_->likelihood : nullptr);
  return out;
}

}  // namespace roboads::core
