#include "core/nuise.h"

#include <algorithm>

#include "matrix/decomp.h"
#include "obs/timer.h"
#include "stats/gaussian.h"

namespace roboads::core {

NuiseStageTimers NuiseStageTimers::resolve(obs::MetricsRegistry* metrics) {
  NuiseStageTimers t;
  if (metrics == nullptr) return t;
  t.input_estimation = &metrics->histogram("nuise.input_estimation_ns");
  t.predict = &metrics->histogram("nuise.predict_ns");
  t.correct = &metrics->histogram("nuise.correct_ns");
  t.sensor_anomaly = &metrics->histogram("nuise.sensor_anomaly_ns");
  t.likelihood = &metrics->histogram("nuise.likelihood_ns");
  return t;
}

Nuise::Nuise(const dyn::DynamicModel& model,
             const sensors::SensorSuite& suite, Mode mode, Matrix process_cov)
    : model_(model),
      suite_(suite),
      mode_(std::move(mode)),
      process_cov_(std::move(process_cov)) {
  validate_modes({mode_}, suite_);
  ROBOADS_CHECK(process_cov_.rows() == model_.state_dim() &&
                    process_cov_.cols() == model_.state_dim(),
                "process covariance shape mismatch");
  ROBOADS_CHECK(process_cov_.is_symmetric(1e-8),
                "process covariance must be symmetric");
  if (suite_.count() > 0) {
    ROBOADS_CHECK_EQ(suite_.sensor(0).state_dim(), model_.state_dim(),
                     "suite and model disagree on state dimension");
  }
  // Exact symmetry lets the step use the mirrored-triangle covariance
  // kernels (sandwich / add_self_adjoint) without per-use symmetrization.
  process_cov_.symmetrize();

  // Mode-invariant workspace: everything the steady-state step would
  // otherwise rebuild per iteration.
  ws_.r2 = suite_.noise_covariance(mode_.reference);
  ws_.ref_angle_mask = suite_.angle_mask(mode_.reference);
  if (!mode_.testing.empty()) {
    ws_.r1 = suite_.noise_covariance(mode_.testing);
    ws_.tst_angle_mask = suite_.angle_mask(mode_.testing);
  }
  ws_.sat = model_.input_saturation();
  ws_.trust = model_.input_trust_radius();
  const std::size_t q = model_.input_dim();
  Vector trust_var(q);
  for (std::size_t i = 0; i < q; ++i) {
    trust_var[i] = std::min(ws_.trust[i] * ws_.trust[i], 1e12);
  }
  ws_.t_prior = Matrix::diagonal(trust_var);
  ws_.i_n = Matrix::identity(model_.state_dim());
}

NuiseResult Nuise::step(const Vector& x_prev, const Matrix& p_prev,
                        const Vector& u_prev, const Vector& z_full) const {
  return step_subsets(mode_.reference, mode_.testing, x_prev, p_prev, u_prev,
                      z_full, /*cached=*/true);
}

NuiseResult Nuise::step(const Vector& x_prev, const Matrix& p_prev,
                        const Vector& u_prev, const Vector& z_full,
                        const SensorMask& available) const {
  if (available.empty()) return step(x_prev, p_prev, u_prev, z_full);
  ROBOADS_CHECK_EQ(available.size(), suite_.count(),
                   "availability mask size mismatch");

  auto filter = [&](const std::vector<std::size_t>& set) {
    std::vector<std::size_t> kept;
    kept.reserve(set.size());
    for (std::size_t i : set) {
      if (available[i]) kept.push_back(i);
    }
    return kept;
  };
  const std::vector<std::size_t> ref = filter(mode_.reference);
  const std::vector<std::size_t> tst = filter(mode_.testing);

  if (ref.size() == mode_.reference.size() &&
      tst.size() == mode_.testing.size()) {
    // Every sensor of this mode arrived: the exact full step.
    return step(x_prev, p_prev, u_prev, z_full);
  }
  if (ref.empty()) {
    return predict_only(tst, x_prev, p_prev, u_prev, z_full);
  }
  NuiseResult out =
      step_subsets(ref, tst, x_prev, p_prev, u_prev, z_full, /*cached=*/false);
  out.degraded = true;
  out.active_testing = tst;
  return out;
}

NuiseResult Nuise::predict_only(const std::vector<std::size_t>& tst,
                                const Vector& x_prev, const Matrix& p_prev,
                                const Vector& u_prev,
                                const Vector& z_full) const {
  const std::size_t q = model_.input_dim();
  ROBOADS_CHECK_EQ(x_prev.size(), model_.state_dim(),
                   "previous state size mismatch");
  ROBOADS_CHECK_EQ(u_prev.size(), q, "control size mismatch");

  NuiseResult out;
  out.correction_applied = false;
  out.likelihood_informative = false;
  out.degraded = true;
  out.active_testing = tst;

  obs::SplitTimer split(timers_ != nullptr && timers_->any());

  // Propagate through the kinematics with the planned (uncompensated)
  // input: with no reference readings there is no innovation to estimate
  // d̂ᵃ from, so the best available state is the open-loop prediction.
  const Matrix a = model_.jacobian_state(x_prev, u_prev);
  out.state = model_.step(x_prev, u_prev);
  out.state_cov = sandwich(a, p_prev);
  out.state_cov += process_cov_;

  // No information about the actuator this iteration: a zero estimate with
  // identity covariance makes the decision maker's χ² statistic exactly 0.
  out.actuator_anomaly = Vector(q);
  out.actuator_anomaly_cov = Matrix::identity(q);
  out.actuator_identifiable = false;
  split.lap(timers_ != nullptr ? timers_->predict : nullptr);

  // Testing sensors that did arrive are still screened against the
  // prediction; the wider Pˣ of the open-loop step is accounted for in the
  // anomaly covariance.
  if (!tst.empty()) {
    const Vector z1 = suite_.slice(tst, z_full);
    out.sensor_anomaly = suite_.residual(tst, z1, out.state);
    const Matrix c1 = suite_.jacobian(tst, out.state);
    out.sensor_anomaly_cov = sandwich(c1, out.state_cov);
    out.sensor_anomaly_cov += suite_.noise_covariance(tst);
  }
  split.lap(timers_ != nullptr ? timers_->sensor_anomaly : nullptr);
  out.log_likelihood = 0.0;  // placeholder; flagged uninformative
  return out;
}

NuiseResult Nuise::step_subsets(const std::vector<std::size_t>& ref,
                                const std::vector<std::size_t>& tst,
                                const Vector& x_prev, const Matrix& p_prev,
                                const Vector& u_prev, const Vector& z_full,
                                bool cached) const {
  const std::size_t n = model_.state_dim();
  const std::size_t q = model_.input_dim();
  ROBOADS_CHECK_EQ(x_prev.size(), n, "previous state size mismatch");
  ROBOADS_CHECK(p_prev.rows() == n && p_prev.cols() == n,
                "previous covariance shape mismatch");
  ROBOADS_CHECK_EQ(u_prev.size(), q, "control size mismatch");

  obs::SplitTimer split(timers_ != nullptr && timers_->any());

  const Matrix a = model_.jacobian_state(x_prev, u_prev);
  const Matrix g = model_.jacobian_input(x_prev, u_prev);
  const Matrix& qc = process_cov_;

  // Subset-dependent structure: served from the workspace on the healthy
  // path, rebuilt only for degraded (filtered-subset) steps.
  Matrix r2_storage;
  std::vector<bool> ref_mask_storage;
  if (!cached) {
    r2_storage = suite_.noise_covariance(ref);
    ref_mask_storage = suite_.angle_mask(ref);
  }
  const Matrix& r2 = cached ? ws_.r2 : r2_storage;
  const std::vector<bool>& ref_mask =
      cached ? ws_.ref_angle_mask : ref_mask_storage;

  // --- Step 1: actuator anomaly estimation (lines 2-6). ---
  // Linearize h₂ at the uncompensated prediction f(x̂, u).
  const Vector x_bare = model_.step(x_prev, u_prev);
  const Matrix c2 = suite_.jacobian(ref, x_bare);
  const Vector z2 = suite_.slice(ref, z_full);

  Matrix p_tilde = sandwich(a, p_prev);
  p_tilde += qc;
  Matrix r_star = sandwich(c2, p_tilde);
  r_star += r2;

  const Matrix f = c2 * g;  // how the input shows in the reference readings
  // Fᵀ R*⁻¹ by factor-solve with F as the right-hand side — no explicit
  // inverse (R*⁻¹ is symmetric, so (R*⁻¹F)ᵀ is exactly the product needed).
  const SpdFactor r_star_factor(r_star);
  const Matrix ft_rinv = r_star_factor.solve(f).transpose();
  Matrix gram = ft_rinv * f;
  gram.symmetrize();

  NuiseResult out;
  // One shared eigendecomposition answers both the identifiability question
  // and the pseudo-inverse: when the reference group under-determines the
  // input the eigen-thresholded pseudo-inverse yields the minimum-norm
  // estimate instead of amplifying a numerically-tiny pivot.
  const SpdEigenFactor gram_factor(gram);
  out.actuator_identifiable = gram_factor.rank() == q;
  const Matrix m2 = gram_factor.pseudo_inverse() * ft_rinv;

  const Vector resid_bare = suite_.residual(ref, z2, x_bare, ref_mask);
  out.actuator_anomaly = m2 * resid_bare;
  out.actuator_anomaly_cov = sandwich(m2, r_star);
  split.lap(timers_ != nullptr ? timers_->input_estimation : nullptr);

  // --- Step 2: state prediction with compensation (lines 7-10). ---
  // The compensated input is clamped to the actuator's physical range: an
  // executed command cannot lie outside it, and extrapolating the nonlinear
  // kinematics past it (e.g. tan of an unobservable steering estimate at
  // standstill) would destabilize the shared state estimate.
  // The compensation uses a shrunk estimate: the MAP of d̂ᵃ under a
  // zero-mean Gaussian prior whose scale is the model's linearization trust
  // radius. Where the estimate is sharp (Pᵃ ≪ trust²) this is full
  // compensation; where the innovation geometry makes d̂ᵃ noisy (e.g.
  // near-collinear speed/steering columns in a hard turn) the noise is
  // suppressed instead of extrapolating tan-type nonlinearities with it and
  // poisoning the shared state. Only the compensation is shrunk — the
  // reported estimate and its χ² statistic stay untouched.
  const Vector& sat = ws_.sat;
  const Vector& trust = ws_.trust;
  const Matrix& t_prior = ws_.t_prior;
  // Pᵃ + T is SPD by construction (T has strictly positive diagonal), so
  // the shrinkage solve takes the Cholesky path; the eigen fallback only
  // engages if Pᵃ degenerated numerically.
  Matrix shrink_m = out.actuator_anomaly_cov;
  shrink_m += t_prior;
  const SpdFactor shrink(shrink_m);
  const Vector delta = t_prior * shrink.solve(out.actuator_anomaly);
  Vector u_comp = u_prev;
  for (std::size_t i = 0; i < q; ++i) {
    const double step_i = std::clamp(delta[i], -3.0 * trust[i],
                                     3.0 * trust[i]);
    u_comp[i] = std::clamp(u_prev[i] + step_i, -sat[i], sat[i]);
  }
  const Vector x_pred = model_.step(x_prev, u_comp);
  const Matrix& i_n = ws_.i_n;
  const Matrix gm2 = g * m2;
  const Matrix proj = i_n - gm2 * c2;  // (I − G M₂ C₂)
  const Matrix a_bar = proj * a;
  Matrix q_bar = sandwich(proj, qc);
  q_bar += sandwich(gm2, r2);
  Matrix p_pred = sandwich(a_bar, p_prev);
  p_pred += q_bar;
  split.lap(timers_ != nullptr ? timers_->predict : nullptr);

  // --- Step 3: state estimation (lines 11-14). ---
  // Relinearize h₂ at the compensated prediction.
  const Matrix c2p = suite_.jacobian(ref, x_pred);
  // Cross-covariance Ū = E[(x_k − x̂_{k|k−1}) ξ₂ᵀ] = −G M₂ R₂.
  const Matrix u_cross = -(gm2 * r2);
  Matrix innov_cov = sandwich(c2p, p_pred);
  innov_cov += r2;
  add_self_adjoint(innov_cov, c2p * u_cross);
  // The innovation covariance is *structurally* rank-deficient: the d̂ᵃ
  // compensation consumes q degrees of freedom of the reference innovation
  // (this is why line 20 of Algorithm 2 is written with pseudo-inverse and
  // pseudo-determinant). One eigendecomposition serves the support-only
  // gain inversion here AND the rank / pseudo-determinant / Mahalanobis
  // terms of the mode likelihood below.
  const SpdEigenFactor innov_factor(innov_cov);
  const Matrix gain =
      (p_pred * c2p.transpose() + u_cross) * innov_factor.pseudo_inverse();

  const Vector innovation = suite_.residual(ref, z2, x_pred, ref_mask);
  out.state = x_pred + gain * innovation;

  // Generalized Joseph form: exact for any gain, keeps Pˣ symmetric PSD.
  const Matrix ilc = i_n - gain * c2p;
  Matrix state_cov = sandwich(ilc, p_pred);
  state_cov += sandwich(gain, r2);
  add_self_adjoint(state_cov, ilc * u_cross * gain.transpose(), -1.0);
  out.state_cov = std::move(state_cov);
  split.lap(timers_ != nullptr ? timers_->correct : nullptr);

  // --- Step 4: testing-sensor anomaly estimation (lines 15-16). ---
  if (!tst.empty()) {
    Matrix r1_storage;
    std::vector<bool> tst_mask_storage;
    if (!cached) {
      r1_storage = suite_.noise_covariance(tst);
      tst_mask_storage = suite_.angle_mask(tst);
    }
    const Matrix& r1 = cached ? ws_.r1 : r1_storage;
    const std::vector<bool>& tst_mask =
        cached ? ws_.tst_angle_mask : tst_mask_storage;

    const Vector z1 = suite_.slice(tst, z_full);
    out.sensor_anomaly = suite_.residual(tst, z1, out.state, tst_mask);
    const Matrix c1 = suite_.jacobian(tst, out.state);
    Matrix sa_cov = sandwich(c1, out.state_cov);
    sa_cov += r1;
    out.sensor_anomaly_cov = std::move(sa_cov);
  }
  split.lap(timers_ != nullptr ? timers_->sensor_anomaly : nullptr);

  // --- Mode likelihood (lines 17-20). ---
  out.innovation = innovation;
  out.innovation_cov = innov_cov;
  out.log_likelihood =
      stats::degenerate_gaussian_log_pdf(innovation, innov_factor);
  split.lap(timers_ != nullptr ? timers_->likelihood : nullptr);
  return out;
}

}  // namespace roboads::core
