#include "core/decision.h"

#include "matrix/decomp.h"
#include "stats/chi_square.h"

namespace roboads::core {

DecisionMaker::DecisionMaker(const sensors::SensorSuite& suite,
                             DecisionConfig config)
    : suite_(suite), config_(config),
      per_sensor_history_(suite.count()) {
  ROBOADS_CHECK(config_.sensor_alpha > 0.0 && config_.sensor_alpha < 1.0,
                "sensor alpha must lie in (0,1)");
  ROBOADS_CHECK(config_.actuator_alpha > 0.0 && config_.actuator_alpha < 1.0,
                "actuator alpha must lie in (0,1)");
  auto check_window = [](const SlidingWindowConfig& w) {
    ROBOADS_CHECK(w.window >= 1 && w.criteria >= 1 && w.criteria <= w.window,
                  "sliding window requires 1 <= c <= w");
  };
  check_window(config_.sensor_window);
  check_window(config_.actuator_window);
}

void DecisionMaker::reset() {
  sensor_history_.clear();
  actuator_history_.clear();
  for (auto& h : per_sensor_history_) h.clear();
}

bool DecisionMaker::window_met(std::deque<bool>& history, bool positive,
                               const SlidingWindowConfig& cfg) const {
  history.push_back(positive);
  while (history.size() > cfg.window) history.pop_front();
  std::size_t count = 0;
  for (bool b : history) count += b ? 1 : 0;
  return count >= cfg.criteria;
}

Decision DecisionMaker::evaluate(const Mode& mode, const NuiseResult& result) {
  Decision d;

  // --- Aggregate sensor test (line 10). ---
  if (!result.sensor_anomaly.empty()) {
    const std::size_t dof = result.sensor_anomaly.size();
    d.sensor_statistic = quadratic_form(
        inverse_spd(result.sensor_anomaly_cov), result.sensor_anomaly);
    d.sensor_threshold = stats::chi_square_threshold(config_.sensor_alpha,
                                                     dof);
    d.sensor_test_positive = d.sensor_statistic > d.sensor_threshold;
  }
  d.sensor_alarm = window_met(sensor_history_, d.sensor_test_positive,
                              config_.sensor_window);

  // --- Aggregate actuator test (line 11). ---
  {
    const std::size_t dof = result.actuator_anomaly.size();
    d.actuator_statistic = quadratic_form(
        inverse_spd(result.actuator_anomaly_cov), result.actuator_anomaly);
    d.actuator_threshold =
        stats::chi_square_threshold(config_.actuator_alpha, dof);
    d.actuator_test_positive = d.actuator_statistic > d.actuator_threshold;
  }
  d.actuator_alarm = window_met(actuator_history_, d.actuator_test_positive,
                                config_.actuator_window);
  d.actuator_anomaly = result.actuator_anomaly;

  // --- Per-sensor attribution (lines 12-19). ---
  // The per-sensor χ² outcome is tracked every iteration through the same
  // sliding-window mechanism as the aggregate test, so that the attributed
  // sensor set is as debounced as the alarm itself; a sensor is *confirmed*
  // only while the aggregate alarm holds. On a degraded step (sensor
  // outage, sim/faults.h) only the testing sensors actually stacked into
  // d̂ˢ are attributed — unavailable sensors carry no fresh evidence.
  const std::vector<std::size_t>& testing = active_testing_of(mode, result);
  std::vector<bool> tested(suite_.count(), false);
  std::size_t at = 0;
  for (std::size_t t : testing) {
    const std::size_t dim = suite_.sensor(t).dim();
    SensorVerdict v;
    v.sensor_index = t;
    v.anomaly_estimate = result.sensor_anomaly.segment(at, dim);
    const Matrix block = result.sensor_anomaly_cov.block(at, at, dim, dim);
    v.statistic = quadratic_form(inverse_spd(block), v.anomaly_estimate);
    v.threshold = stats::chi_square_threshold(config_.sensor_alpha, dim);
    const bool positive = v.statistic > v.threshold;
    const bool windowed = window_met(per_sensor_history_[t], positive,
                                     config_.sensor_window);
    v.misbehaving = d.sensor_alarm && windowed;
    if (v.misbehaving) d.misbehaving_sensors.push_back(t);
    d.sensor_verdicts.push_back(std::move(v));
    tested[t] = true;
    at += dim;
  }
  // Sensors without a fresh test this iteration — the mode's reference
  // group and any unavailable testing sensor — still age their windows so
  // stale positives from before a mode switch (or an outage) decay.
  for (std::size_t s = 0; s < suite_.count(); ++s) {
    if (!tested[s]) {
      window_met(per_sensor_history_[s], false, config_.sensor_window);
    }
  }

  return d;
}

}  // namespace roboads::core
