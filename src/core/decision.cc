#include "core/decision.h"

#include "matrix/decomp.h"
#include "stats/chi_square.h"

namespace roboads::core {

DecisionMaker::DecisionMaker(const sensors::SensorSuite& suite,
                             DecisionConfig config)
    : suite_(suite), config_(config) {
  ROBOADS_CHECK(config_.sensor_alpha > 0.0 && config_.sensor_alpha < 1.0,
                "sensor alpha must lie in (0,1)");
  ROBOADS_CHECK(config_.actuator_alpha > 0.0 && config_.actuator_alpha < 1.0,
                "actuator alpha must lie in (0,1)");
  auto check_window = [](const SlidingWindowConfig& w) {
    ROBOADS_CHECK(w.window >= 1 && w.criteria >= 1 && w.criteria <= w.window,
                  "sliding window requires 1 <= c <= w");
  };
  check_window(config_.sensor_window);
  check_window(config_.actuator_window);

  sensor_history_ = SlidingWindow(config_.sensor_window);
  actuator_history_ = SlidingWindow(config_.actuator_window);
  per_sensor_history_.assign(suite.count(),
                             SlidingWindow(config_.sensor_window));

  // The stacked sensor statistic has at most total_dim() degrees of freedom
  // and the actuator statistic no more than that either (the anomaly is
  // identified through the sensor stack), so precompute both quantile tables
  // over that range; dof 0 is never tested and stays 0.
  const std::size_t max_dof = suite.total_dim();
  sensor_thresholds_.assign(max_dof + 1, 0.0);
  actuator_thresholds_.assign(max_dof + 1, 0.0);
  for (std::size_t dof = 1; dof <= max_dof; ++dof) {
    sensor_thresholds_[dof] =
        stats::chi_square_threshold(config_.sensor_alpha, dof);
    actuator_thresholds_[dof] =
        stats::chi_square_threshold(config_.actuator_alpha, dof);
  }
}

void DecisionMaker::reset() {
  sensor_history_.clear();
  actuator_history_.clear();
  for (auto& h : per_sensor_history_) h.clear();
}

void DecisionMaker::save_windows(std::vector<std::int64_t>& out) const {
  out.clear();
  sensor_history_.save(out);
  actuator_history_.save(out);
  for (const SlidingWindow& h : per_sensor_history_) h.save(out);
}

void DecisionMaker::restore_windows(const std::vector<std::int64_t>& in) {
  std::size_t at = sensor_history_.restore(in, 0);
  at = actuator_history_.restore(in, at);
  for (SlidingWindow& h : per_sensor_history_) at = h.restore(in, at);
  ROBOADS_CHECK_EQ(at, in.size(),
                   "decision-window snapshot has trailing data");
}

double DecisionMaker::threshold_for(const std::vector<double>& cache,
                                    double alpha, std::size_t dof) {
  if (dof < cache.size()) return cache[dof];
  return stats::chi_square_threshold(alpha, dof);
}

Decision DecisionMaker::evaluate(const Mode& mode, const NuiseResult& result) {
  Decision d;

  // --- Aggregate sensor test (line 10). ---
  if (!result.sensor_anomaly.empty()) {
    const std::size_t dof = result.sensor_anomaly.size();
    const SpdFactor cov(result.sensor_anomaly_cov);
    d.sensor_statistic = cov.quadratic_form(result.sensor_anomaly);
    d.sensor_threshold = threshold_for(sensor_thresholds_,
                                       config_.sensor_alpha, dof);
    d.sensor_test_positive = d.sensor_statistic > d.sensor_threshold;
  }
  d.sensor_alarm = sensor_history_.push(d.sensor_test_positive);

  // --- Aggregate actuator test (line 11). ---
  {
    const std::size_t dof = result.actuator_anomaly.size();
    const SpdFactor cov(result.actuator_anomaly_cov);
    d.actuator_statistic = cov.quadratic_form(result.actuator_anomaly);
    d.actuator_threshold = threshold_for(actuator_thresholds_,
                                         config_.actuator_alpha, dof);
    d.actuator_test_positive = d.actuator_statistic > d.actuator_threshold;
  }
  d.actuator_alarm = actuator_history_.push(d.actuator_test_positive);
  d.actuator_anomaly = result.actuator_anomaly;

  // --- Per-sensor attribution (lines 12-19). ---
  // The per-sensor χ² outcome is tracked every iteration through the same
  // sliding-window mechanism as the aggregate test, so that the attributed
  // sensor set is as debounced as the alarm itself; a sensor is *confirmed*
  // only while the aggregate alarm holds. On a degraded step (sensor
  // outage, sim/faults.h) only the testing sensors actually stacked into
  // d̂ˢ are attributed — unavailable sensors carry no fresh evidence.
  const std::vector<std::size_t>& testing = active_testing_of(mode, result);
  ROBOADS_CHECK_EQ(result.sensor_anomaly.size(), stacked_dim(suite_, testing),
                   "stacked sensor anomaly does not match the testing group");
  std::vector<bool> tested(suite_.count(), false);
  std::size_t at = 0;
  for (std::size_t t : testing) {
    const std::size_t dim = suite_.sensor(t).dim();
    SensorVerdict v;
    v.sensor_index = t;
    v.anomaly_estimate = result.sensor_anomaly.segment(at, dim);
    const SpdFactor block(result.sensor_anomaly_cov.block(at, at, dim, dim));
    v.statistic = block.quadratic_form(v.anomaly_estimate);
    v.threshold = threshold_for(sensor_thresholds_, config_.sensor_alpha, dim);
    const bool positive = v.statistic > v.threshold;
    const bool windowed = per_sensor_history_[t].push(positive);
    v.misbehaving = d.sensor_alarm && windowed;
    if (v.misbehaving) d.misbehaving_sensors.push_back(t);
    d.sensor_verdicts.push_back(std::move(v));
    tested[t] = true;
    at += dim;
  }
  // Sensors without a fresh test this iteration — the mode's reference
  // group and any unavailable testing sensor — still age their windows so
  // stale positives from before a mode switch (or an outage) decay.
  for (std::size_t s = 0; s < suite_.count(); ++s) {
    if (!tested[s]) {
      per_sensor_history_[s].push(false);
    }
  }

  return d;
}

}  // namespace roboads::core
