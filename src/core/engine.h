// Multi-mode estimation engine and mode selector (paper §IV-B, §IV-C;
// Algorithm 1, lines 4-9).
//
// The engine maintains one NUISE estimator per mode plus a recursive weight
// μ_m per mode: μ_m,k = max(N_m,k · μ_m,k−1, ε) followed by normalization.
// All estimators start each iteration from the shared state estimate of the
// previously selected mode, exactly as Algorithm 1 threads x̂_{k−1|k−1} into
// every NUISE call.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/health.h"
#include "core/nuise.h"
#include "obs/obs.h"

namespace roboads::core {

struct EngineConfig {
  // Likelihood floor ε: prevents any mode's weight from collapsing to zero
  // so the selector can recover when the attacked sensor set changes
  // (Algorithm 1, line 6). Applied to the *normalized* weight.
  //
  // Sizing note: ε also bounds how quickly a *corrupted-reference* mode can
  // reclaim the selection after the filter absorbs a constant bias into its
  // state (at which point that hypothesis becomes self-consistent — the
  // ambiguity §VI's "frequently switching attack targets" discussion
  // acknowledges). A mode at the floor needs ~log(1/ε)/δ iterations of
  // per-step log-likelihood advantage δ to overtake; 1e-9 keeps that beyond
  // mission length for sensors of comparable quality while still allowing
  // recovery when conditions genuinely change.
  double likelihood_floor = 1e-9;

  // Concurrency of the per-mode NUISE fan-out (Algorithm 1, lines 4-9):
  // every mode starts from the same shared x̂_{k−1|k−1}, so the M estimator
  // steps are independent and run on a fixed-size pool. 1 = the exact
  // legacy serial path (no threads spawned), 0 = hardware concurrency,
  // n = n-way. Outputs are bit-identical for every setting: each mode's
  // arithmetic is untouched and the weight/selection reduction stays serial
  // after the join (see docs/CONCURRENCY.md).
  std::size_t num_threads = 1;

  // Numerical health supervision (core/health.h): finite/PSD checks after
  // each mode update, covariance repair for mild drift, and quarantine of
  // diverged modes. Enabled by default — the checks are pure reads on
  // healthy results, so supervised output is bit-identical to the
  // unsupervised engine whenever nothing actually fails.
  HealthConfig health;

  // Observability handles (obs/obs.h; docs/OBSERVABILITY.md). Null members
  // (the default) disable instrumentation: the engine then takes one
  // pointer-null branch per site and its outputs stay bit-identical — the
  // checked-in golden traces prove it. With metrics attached the engine
  // records step latency, NUISE stage timers, mode-selection counters and
  // fault/quarantine tallies; with a trace sink attached it emits
  // "health_transition" and "containment_floor" events. Observation never
  // feeds back into estimation.
  obs::Instruments instruments;
  // Mission/job label stamped onto emitted trace events so batched sweeps
  // sharing one sink stay attributable.
  std::string obs_label;
};

struct EngineResult {
  std::size_t selected_mode = 0;          // Mk
  std::vector<double> mode_weights;       // normalized μ_m,k
  std::vector<NuiseResult> per_mode;      // one entry per mode
  const NuiseResult& selected() const { return per_mode[selected_mode]; }

  // Health snapshot after this iteration's supervision (one entry per
  // mode). Quarantined modes carry weight 0 and are never selected.
  std::vector<ModeHealthState> mode_health;
  std::size_t quarantined_modes = 0;
  // True when every mode failed supervision this iteration: the engine kept
  // the previous shared estimate, reset the weights to uniform, and
  // reinstated all modes for the next step.
  bool fallback_previous_estimate = false;
};

class MultiModeEngine {
 public:
  // `model` and `suite` must outlive the engine.
  MultiModeEngine(const dyn::DynamicModel& model,
                  const sensors::SensorSuite& suite, std::vector<Mode> modes,
                  const Matrix& process_cov, const Vector& x0,
                  const Matrix& p0, EngineConfig config = {});

  const std::vector<Mode>& modes() const { return modes_; }
  const Vector& state() const { return state_; }
  const Matrix& state_cov() const { return state_cov_; }
  const std::vector<double>& weights() const { return weights_; }

  // One control iteration: runs every mode's NUISE from the shared previous
  // estimate, updates weights, selects the max-weight mode, and adopts its
  // state estimate.
  EngineResult step(const Vector& u_prev, const Vector& z_full);

  // Degraded-mode iteration under a per-sensor availability mask (empty =
  // all available; see sim/faults.h). Modes whose reference group is
  // unavailable run prediction-only and participate neutrally in the weight
  // update; missing testing sensors are excluded from each mode's d̂ˢ.
  EngineResult step(const Vector& u_prev, const Vector& z_full,
                    const SensorMask& available);

  // Resets the shared estimate, uniform weights, and mode health (e.g. for
  // a new mission).
  void reset(const Vector& x0, const Matrix& p0);

  // Flight-recorder state capture (obs/flight_recorder.h): fills/reads the
  // engine-owned part of the flat snapshot — shared estimate + covariance,
  // normalized weights, per-mode health, and the step counter. Restoring
  // into an engine built with the same model/suite/modes/config resumes
  // stepping bit-identically from the captured point. The decision-window
  // part of the snapshot belongs to the DecisionMaker (core/roboads.h ties
  // the two together).
  void save_state(obs::DetectorStateSnapshot& snap) const;
  void restore_state(const obs::DetectorStateSnapshot& snap);

  // Pool size actually in use (after resolving num_threads = 0).
  std::size_t thread_count() const { return pool_->size(); }

  // Health of each mode after the most recent step.
  const std::vector<ModeHealth>& mode_health() const { return health_; }

 private:
  EngineResult step_impl(const Vector& u_prev, const Vector& z_full,
                         const SensorMask* available);

  const sensors::SensorSuite* suite_;  // for health supervision block layout
  std::vector<Mode> modes_;
  std::vector<Nuise> estimators_;
  EngineConfig config_;
  std::unique_ptr<common::ThreadPool> pool_;
  Vector state_;
  Matrix state_cov_;
  std::vector<double> weights_;  // normalized
  std::vector<ModeHealth> health_;
  // Step scratch, sized once at construction so step_impl does not
  // reallocate the reduction buffers every iteration.
  std::vector<bool> quarantined_scratch_;
  std::vector<double> log_w_scratch_;

  // --- Observability handles, resolved once at construction (all null when
  // config_.instruments.metrics is null; the hot path then only pays the
  // null checks). Handles stay valid for the registry's lifetime.
  NuiseStageTimers stage_timers_;
  obs::Histogram* h_step_ = nullptr;              // engine.step_ns
  std::vector<obs::Counter*> c_mode_selected_;    // engine.mode_selected.<label>
  obs::Counter* c_repairs_ = nullptr;             // engine.health_repairs
  obs::Counter* c_quarantine_enter_ = nullptr;    // engine.quarantine_enter
  obs::Counter* c_containment_floor_ = nullptr;   // engine.containment_floor
  obs::Gauge* g_quarantined_ = nullptr;           // engine.quarantined_modes
  std::size_t step_index_ = 0;  // iteration counter for trace events
};

}  // namespace roboads::core
