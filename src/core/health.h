// Numerical health supervision for the multi-mode engine.
//
// One diverged NUISE instance must degrade gracefully instead of taking the
// whole engine down. After every mode update the supervisor checks the
// quantities that feed mode selection and the shared state estimate:
//
//   * finite-value checks on x̂, Pˣ, d̂ᵃ and the mode log-likelihood —
//     a non-finite value there is unrecoverable for this iteration and
//     quarantines the mode;
//   * a PSD check on Pˣ — mild negative eigenvalue drift is *repaired*
//     (symmetrize + eigenvalue clamp) and marks the mode degraded;
//   * finite-value checks on the testing-sensor anomaly blocks — a
//     non-finite block is excluded from anomaly estimation and χ²
//     attribution (the mode itself stays usable: d̂ˢ does not feed
//     selection or the shared estimate).
//
// Health follows a per-mode state machine
//
//   healthy → degraded     on a repair or a stripped anomaly block
//   any     → quarantined  on an unrecoverable result
//   quarantined → degraded after `quarantine_steps` consecutive clean steps
//   degraded → healthy     after `recover_after` further clean steps
//
// Because the engine threads the *shared* previous estimate into every mode
// each iteration (Algorithm 1), estimators carry no private state: a
// quarantined mode keeps being stepped from the healthy shared estimate, so
// "reinitialize" is simply reinstating it into the weight normalization
// (at the likelihood floor) once its outputs are clean again.
//
// All checks are pure reads on healthy results — the repair path only
// triggers on violations — so supervision never perturbs a healthy run:
// engine outputs stay bit-identical to the unsupervised code.
#pragma once

#include <cstddef>
#include <string>

#include "core/nuise.h"

namespace roboads::core {

struct HealthConfig {
  bool enabled = true;
  // A negative Pˣ eigenvalue below -psd_tol * max(1, λ_max) is treated as
  // genuine drift and repaired; anything milder is ordinary floating-point
  // noise and left untouched (preserving bit-identical healthy runs).
  double psd_tol = 1e-9;
  // Repaired eigenvalues are clamped up to eigen_floor * max(1, λ_max).
  double eigen_floor = 1e-12;
  // Consecutive clean steps before a quarantined mode is reinstated.
  std::size_t quarantine_steps = 10;
  // Further consecutive clean steps before degraded returns to healthy.
  std::size_t recover_after = 5;
};

enum class ModeHealthState { kHealthy, kDegraded, kQuarantined };

const char* to_string(ModeHealthState state);
// Single-letter code ('H'/'D'/'Q') — the compact per-mode health string in
// the observability trace (obs/trace.h, docs/OBSERVABILITY.md).
char code(ModeHealthState state);

// Per-mode health record driven by the engine each iteration.
struct ModeHealth {
  ModeHealthState state = ModeHealthState::kHealthy;
  std::size_t clean_streak = 0;      // consecutive clean supervised steps
  std::size_t quarantine_count = 0;  // times this mode was quarantined
  std::size_t repairs = 0;           // covariance repairs applied

  bool quarantined() const { return state == ModeHealthState::kQuarantined; }

  // State-machine transitions; `cfg` supplies the recovery thresholds.
  void on_clean(const HealthConfig& cfg);
  void on_repaired(const HealthConfig& cfg);
  void on_fatal(const HealthConfig& cfg);
};

// Outcome of supervising one NuiseResult.
struct SupervisionOutcome {
  bool fatal = false;     // unrecoverable this iteration → quarantine
  bool repaired = false;  // covariance repair or anomaly-block strip applied
  std::string detail;     // human-readable reason (empty when clean)
};

// Symmetrizes `cov` and clamps eigenvalues below the configured floor.
// Returns true when a repair was applied, false when the matrix was already
// acceptably PSD (in which case it is left bit-for-bit untouched). A
// non-finite matrix is not repairable; callers must check all_finite first.
bool repair_covariance(Matrix& cov, const HealthConfig& cfg);

// Checks (and, where possible, repairs in place) one mode's NUISE result.
// `mode` and `suite` are needed to strip non-finite testing-anomaly blocks
// out of the stacked d̂ˢ.
SupervisionOutcome supervise_result(NuiseResult& result, const Mode& mode,
                                    const sensors::SensorSuite& suite,
                                    const HealthConfig& cfg);

}  // namespace roboads::core
