#include "core/ekf.h"

#include "matrix/decomp.h"

namespace roboads::core {

Ekf::Ekf(const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
         Matrix process_cov, std::vector<std::size_t> used)
    : model_(model),
      suite_(suite),
      process_cov_(std::move(process_cov)),
      used_(used.empty() ? suite.all() : std::move(used)) {
  ROBOADS_CHECK(process_cov_.rows() == model_.state_dim() &&
                    process_cov_.cols() == model_.state_dim(),
                "process covariance shape mismatch");
  ROBOADS_CHECK(!used_.empty(), "EKF needs at least one sensor");
}

EkfResult Ekf::step(const Vector& x_prev, const Matrix& p_prev,
                    const Vector& u_prev, const Vector& z_full) const {
  const std::size_t n = model_.state_dim();
  ROBOADS_CHECK_EQ(x_prev.size(), n, "state size mismatch");

  // Predict.
  const Matrix a = model_.jacobian_state(x_prev, u_prev);
  const Vector x_pred = model_.step(x_prev, u_prev);
  const Matrix p_pred =
      (a * p_prev * a.transpose() + process_cov_).symmetrized();

  // Update against the fused measurement stack.
  const Matrix c = suite_.jacobian(used_, x_pred);
  const Matrix r = suite_.noise_covariance(used_);
  const Vector z = suite_.slice(used_, z_full);

  EkfResult out;
  out.innovation = suite_.residual(used_, z, x_pred);
  out.innovation_cov =
      (c * p_pred * c.transpose() + r).symmetrized();
  const Matrix gain = p_pred * c.transpose() * inverse_spd(out.innovation_cov);
  out.state = x_pred + gain * out.innovation;
  const Matrix joseph = Matrix::identity(n) - gain * c;
  out.state_cov = (joseph * p_pred * joseph.transpose() +
                   gain * r * gain.transpose())
                      .symmetrized();
  return out;
}

}  // namespace roboads::core
