#include "core/roboads.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/timer.h"
#include "obs/trace.h"

namespace roboads::core {
namespace {

std::vector<Mode> default_modes(const sensors::SensorSuite& suite,
                                std::vector<Mode> modes) {
  if (modes.empty()) return one_reference_per_sensor(suite);
  return modes;
}

}  // namespace

RoboAds::RoboAds(const dyn::DynamicModel& model,
                 const sensors::SensorSuite& suite, const Matrix& process_cov,
                 const Vector& x0, const Matrix& p0, RoboAdsConfig config,
                 std::vector<Mode> modes)
    : suite_(suite),
      engine_(model, suite, default_modes(suite, std::move(modes)),
              process_cov, x0, p0, config.engine),
      decision_maker_(suite, config.decision),
      instruments_(config.engine.instruments),
      obs_label_(config.engine.obs_label) {
  if (obs::MetricsRegistry* metrics = instruments_.metrics) {
    h_decision_ = &metrics->histogram("decision.evaluate_ns",
                                      obs::default_latency_bounds_ns());
    c_sensor_alarms_ = &metrics->counter("detector.sensor_alarms");
    c_actuator_alarms_ = &metrics->counter("detector.actuator_alarms");
  }
}

void RoboAds::reset(const Vector& x0, const Matrix& p0) {
  engine_.reset(x0, p0);
  decision_maker_.reset();
  iteration_ = 0;
  prev_sensor_alarm_ = false;
  prev_actuator_alarm_ = false;
  prev_quarantined_ = false;
}

void RoboAds::save_state(obs::DetectorStateSnapshot& snap) const {
  engine_.save_state(snap);
  decision_maker_.save_windows(snap.decision);
  snap.iteration = static_cast<std::int64_t>(iteration_);
}

void RoboAds::restore_state(const obs::DetectorStateSnapshot& snap) {
  engine_.restore_state(snap);
  decision_maker_.restore_windows(snap.decision);
  iteration_ = static_cast<std::size_t>(snap.iteration);
  // The trigger edge state is not part of the snapshot: a replayed run
  // starts with clear edges, so the incident that froze the bundle fires
  // again during replay (which is exactly what --verify checks).
  prev_sensor_alarm_ = false;
  prev_actuator_alarm_ = false;
  prev_quarantined_ = false;
}

DetectionReport RoboAds::step(const Vector& u_prev, const Vector& z_full) {
  return step(u_prev, z_full, SensorMask{});
}

DetectionReport RoboAds::step(const Vector& u_prev, const Vector& z_full,
                              const SensorMask& available) {
  // Monitor-side sanitization: a sensor delivering a non-finite value is a
  // transport/driver fault, not a measurement — mask it out for this
  // iteration so it cannot poison the estimator bank. Finite readings take
  // the caller's mask untouched (bit-identical legacy path when empty).
  SensorMask mask = available;
  if (!z_full.all_finite()) {
    if (mask.empty()) mask.assign(suite_.count(), true);
    for (std::size_t i = 0; i < suite_.count(); ++i) {
      const Vector block = z_full.segment(suite_.offset(i),
                                          suite_.sensor(i).dim());
      if (!block.all_finite()) mask[i] = false;
    }
  }

  // Flight recorder, input half: advance the ring and capture the pre-step
  // detector state plus this iteration's inputs before estimation runs. All
  // writes are same-size assigns into the presized slot (allocation-free in
  // steady state).
  obs::FlightRecorder* const recorder = instruments_.recorder;
  obs::FlightRecord* rec = nullptr;
  if (recorder != nullptr) {
    rec = &recorder->begin_record();
    save_state(rec->pre_step);
    rec->u.assign(u_prev.data(), u_prev.data() + u_prev.size());
    rec->z.assign(z_full.data(), z_full.data() + z_full.size());
    rec->availability.assign(suite_.count(), '1');
    for (std::size_t i = 0; i < mask.size() && i < suite_.count(); ++i) {
      if (!mask[i]) rec->availability[i] = '0';
    }
  }

  const EngineResult engine_result = engine_.step(u_prev, z_full, mask);
  const Mode& mode = engine_.modes()[engine_result.selected_mode];

  // Containment floor: every mode failed supervision this iteration. The
  // engine kept its last good shared estimate; report that with a neutral
  // (statistic-0) decision instead of reading the corrupted mode outputs.
  NuiseResult fallback;
  if (engine_result.fallback_previous_estimate) {
    fallback.state = engine_.state();
    fallback.state_cov = engine_.state_cov();
    fallback.actuator_anomaly = Vector(u_prev.size());
    fallback.actuator_anomaly_cov = Matrix::identity(u_prev.size());
    fallback.correction_applied = false;
    fallback.likelihood_informative = false;
    fallback.actuator_identifiable = false;
    fallback.degraded = true;  // empty active_testing → no attribution
  }
  const NuiseResult& selected = engine_result.fallback_previous_estimate
                                    ? fallback
                                    : engine_result.selected();

  DetectionReport report;
  report.iteration = ++iteration_;
  report.selected_mode = engine_result.selected_mode;
  report.selected_mode_label = mode.label;
  report.mode_weights = engine_result.mode_weights;
  report.state_estimate = selected.state;
  report.state_covariance = selected.state_cov;
  {
    const obs::ScopedTimer decision_timer(h_decision_);
    report.decision = decision_maker_.evaluate(mode, selected);
  }
  report.selected_result = selected;
  report.actuator_anomaly = selected.actuator_anomaly;
  report.mode_health = engine_result.mode_health;
  report.quarantined_modes = engine_result.quarantined_modes;
  report.sensor_available = mask;

  // Split the stacked testing-sensor anomaly back out by suite sensor
  // (degraded steps stack only the available testing sensors).
  report.sensor_anomaly_by_sensor.resize(suite_.count());
  std::size_t at = 0;
  for (std::size_t t : active_testing_of(mode, selected)) {
    const std::size_t dim = suite_.sensor(t).dim();
    report.sensor_anomaly_by_sensor[t] =
        selected.sensor_anomaly.segment(at, dim);
    at += dim;
  }

  if (c_sensor_alarms_ != nullptr && report.decision.sensor_alarm) {
    c_sensor_alarms_->increment();
  }
  if (c_actuator_alarms_ != nullptr && report.decision.actuator_alarm) {
    c_actuator_alarms_->increment();
  }
  if (instruments_.trace != nullptr) {
    emit_iteration_event(report, engine_result);
  }

  // Flight recorder, output half: finish the record, then freeze a
  // postmortem bundle on every rising edge of an incident condition.
  if (rec != nullptr) {
    fill_flight_record(*rec, report, engine_result);
    const std::int64_t k = static_cast<std::int64_t>(report.iteration);
    const bool quarantined_now = report.quarantined_modes > 0;
    if (report.decision.sensor_alarm && !prev_sensor_alarm_) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "sensor chi2 %.6g > %.6g (misbehaving=%s)",
                    report.decision.sensor_statistic,
                    report.decision.sensor_threshold,
                    rec->misbehaving.c_str());
      recorder->trigger(obs::BundleTrigger::kSensorAlarm, k, detail);
    }
    if (report.decision.actuator_alarm && !prev_actuator_alarm_) {
      char detail[160];
      std::snprintf(detail, sizeof(detail), "actuator chi2 %.6g > %.6g",
                    report.decision.actuator_statistic,
                    report.decision.actuator_threshold);
      recorder->trigger(obs::BundleTrigger::kActuatorAlarm, k, detail);
    }
    if (quarantined_now && !prev_quarantined_) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "%zu mode(s) quarantined (health=%s)",
                    report.quarantined_modes, rec->mode_health.c_str());
      recorder->trigger(obs::BundleTrigger::kQuarantine, k, detail);
    }
    prev_sensor_alarm_ = report.decision.sensor_alarm;
    prev_actuator_alarm_ = report.decision.actuator_alarm;
    prev_quarantined_ = quarantined_now;
  }
  return report;
}

// Packs one finished iteration into the recorder slot. Per-sensor fields are
// NaN-padded to the full suite layout so every record has an identical shape
// regardless of the selected mode's testing group or degraded steps.
void RoboAds::fill_flight_record(obs::FlightRecord& rec,
                                 const DetectionReport& report,
                                 const EngineResult& engine_result) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  rec.k = static_cast<std::int64_t>(report.iteration);
  rec.selected_mode = static_cast<std::int64_t>(report.selected_mode);
  rec.mode_weights = report.mode_weights;
  const std::size_t m_count = engine_.modes().size();
  rec.log_likelihoods.resize(m_count);
  rec.innovation_norms.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    const NuiseResult& r = engine_result.per_mode[m];
    rec.log_likelihoods[m] =
        r.likelihood_informative ? r.log_likelihood : kNaN;
    rec.innovation_norms[m] =
        r.correction_applied ? r.innovation.norm() : kNaN;
  }
  rec.sensor_chi2 = report.decision.sensor_statistic;
  rec.sensor_threshold = report.decision.sensor_threshold;
  rec.sensor_alarm = report.decision.sensor_alarm;
  rec.actuator_chi2 = report.decision.actuator_statistic;
  rec.actuator_threshold = report.decision.actuator_threshold;
  rec.actuator_alarm = report.decision.actuator_alarm;
  rec.per_sensor_chi2.assign(suite_.count(), kNaN);
  rec.per_sensor_threshold.assign(suite_.count(), kNaN);
  for (const SensorVerdict& v : report.decision.sensor_verdicts) {
    rec.per_sensor_chi2[v.sensor_index] = v.statistic;
    rec.per_sensor_threshold[v.sensor_index] = v.threshold;
  }
  rec.misbehaving.assign(suite_.count(), '0');
  for (std::size_t s : report.decision.misbehaving_sensors) {
    rec.misbehaving[s] = '1';
  }
  rec.sensor_anomaly.assign(suite_.total_dim(), kNaN);
  for (std::size_t s = 0; s < suite_.count(); ++s) {
    const Vector& block = report.sensor_anomaly_by_sensor[s];
    if (block.size() == 0) continue;
    const std::size_t off = suite_.offset(s);
    for (std::size_t i = 0; i < block.size(); ++i) {
      rec.sensor_anomaly[off + i] = block[i];
    }
  }
  rec.actuator_anomaly.assign(
      report.actuator_anomaly.data(),
      report.actuator_anomaly.data() + report.actuator_anomaly.size());
  rec.mode_health.resize(report.mode_health.size());
  for (std::size_t m = 0; m < report.mode_health.size(); ++m) {
    rec.mode_health[m] = code(report.mode_health[m]);
  }
  rec.quarantined = static_cast<std::int64_t>(report.quarantined_modes);
  rec.containment = engine_result.fallback_previous_estimate;
  // Ground truth is the mission runner's to stamp (annotate_truth); the
  // slot's previous tenant must not leak through.
  rec.truth_valid = false;
  rec.truth_sensors.clear();
  rec.truth_actuator = false;
}

// The per-iteration trace record (docs/OBSERVABILITY.md). Emitted from the
// serial detector path after the engine join, so event order is
// deterministic at any engine thread count. Field layout must be identical
// across iterations of one run — the CSV writer derives its columns from the
// first event (obs/trace.cc).
void RoboAds::emit_iteration_event(const DetectionReport& report,
                                   const EngineResult& engine_result) {
  const std::size_t m_count = engine_.modes().size();
  std::vector<double> log_likelihoods(m_count);
  std::vector<double> innovation_norms(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    const NuiseResult& r = engine_result.per_mode[m];
    log_likelihoods[m] = r.likelihood_informative
                             ? r.log_likelihood
                             : std::numeric_limits<double>::quiet_NaN();
    innovation_norms[m] = r.correction_applied
                              ? r.innovation.norm()
                              : std::numeric_limits<double>::quiet_NaN();
  }

  std::string health_codes(report.mode_health.size(), 'H');
  for (std::size_t m = 0; m < report.mode_health.size(); ++m) {
    health_codes[m] = code(report.mode_health[m]);
  }
  std::string availability(suite_.count(), '1');
  for (std::size_t i = 0;
       i < report.sensor_available.size() && i < availability.size(); ++i) {
    if (!report.sensor_available[i]) availability[i] = '0';
  }
  std::string misbehaving;
  for (std::size_t s : report.decision.misbehaving_sensors) {
    if (!misbehaving.empty()) misbehaving += ';';
    misbehaving += std::to_string(s);
  }

  obs::TraceEvent ev("iteration", obs_label_, report.iteration);
  ev.add("selected_mode", static_cast<std::int64_t>(report.selected_mode));
  ev.add("selected_label", report.selected_mode_label);
  ev.add("mode_weights", report.mode_weights);
  ev.add("log_likelihoods", std::move(log_likelihoods));
  ev.add("innovation_norms", std::move(innovation_norms));
  ev.add("sensor_chi2", report.decision.sensor_statistic);
  ev.add("sensor_threshold", report.decision.sensor_threshold);
  ev.add("sensor_alarm", report.decision.sensor_alarm);
  ev.add("actuator_chi2", report.decision.actuator_statistic);
  ev.add("actuator_threshold", report.decision.actuator_threshold);
  ev.add("actuator_alarm", report.decision.actuator_alarm);
  ev.add("mode_health", std::move(health_codes));
  ev.add("quarantined", static_cast<std::int64_t>(report.quarantined_modes));
  ev.add("availability", std::move(availability));
  ev.add("misbehaving", std::move(misbehaving));
  ev.add("containment_floor", engine_result.fallback_previous_estimate);
  instruments_.trace->emit(std::move(ev));
}

}  // namespace roboads::core
