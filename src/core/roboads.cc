#include "core/roboads.h"

namespace roboads::core {
namespace {

std::vector<Mode> default_modes(const sensors::SensorSuite& suite,
                                std::vector<Mode> modes) {
  if (modes.empty()) return one_reference_per_sensor(suite);
  return modes;
}

}  // namespace

RoboAds::RoboAds(const dyn::DynamicModel& model,
                 const sensors::SensorSuite& suite, const Matrix& process_cov,
                 const Vector& x0, const Matrix& p0, RoboAdsConfig config,
                 std::vector<Mode> modes)
    : suite_(suite),
      engine_(model, suite, default_modes(suite, std::move(modes)),
              process_cov, x0, p0, config.engine),
      decision_maker_(suite, config.decision) {}

void RoboAds::reset(const Vector& x0, const Matrix& p0) {
  engine_.reset(x0, p0);
  decision_maker_.reset();
  iteration_ = 0;
}

DetectionReport RoboAds::step(const Vector& u_prev, const Vector& z_full) {
  const EngineResult engine_result = engine_.step(u_prev, z_full);
  const Mode& mode = engine_.modes()[engine_result.selected_mode];
  const NuiseResult& selected = engine_result.selected();

  DetectionReport report;
  report.iteration = ++iteration_;
  report.selected_mode = engine_result.selected_mode;
  report.selected_mode_label = mode.label;
  report.mode_weights = engine_result.mode_weights;
  report.state_estimate = selected.state;
  report.state_covariance = selected.state_cov;
  report.decision = decision_maker_.evaluate(mode, selected);
  report.selected_result = selected;
  report.actuator_anomaly = selected.actuator_anomaly;

  // Split the stacked testing-sensor anomaly back out by suite sensor.
  report.sensor_anomaly_by_sensor.resize(suite_.count());
  std::size_t at = 0;
  for (std::size_t t : mode.testing) {
    const std::size_t dim = suite_.sensor(t).dim();
    report.sensor_anomaly_by_sensor[t] =
        selected.sensor_anomaly.segment(at, dim);
    at += dim;
  }
  return report;
}

}  // namespace roboads::core
