#include "core/roboads.h"

namespace roboads::core {
namespace {

std::vector<Mode> default_modes(const sensors::SensorSuite& suite,
                                std::vector<Mode> modes) {
  if (modes.empty()) return one_reference_per_sensor(suite);
  return modes;
}

}  // namespace

RoboAds::RoboAds(const dyn::DynamicModel& model,
                 const sensors::SensorSuite& suite, const Matrix& process_cov,
                 const Vector& x0, const Matrix& p0, RoboAdsConfig config,
                 std::vector<Mode> modes)
    : suite_(suite),
      engine_(model, suite, default_modes(suite, std::move(modes)),
              process_cov, x0, p0, config.engine),
      decision_maker_(suite, config.decision) {}

void RoboAds::reset(const Vector& x0, const Matrix& p0) {
  engine_.reset(x0, p0);
  decision_maker_.reset();
  iteration_ = 0;
}

DetectionReport RoboAds::step(const Vector& u_prev, const Vector& z_full) {
  return step(u_prev, z_full, SensorMask{});
}

DetectionReport RoboAds::step(const Vector& u_prev, const Vector& z_full,
                              const SensorMask& available) {
  // Monitor-side sanitization: a sensor delivering a non-finite value is a
  // transport/driver fault, not a measurement — mask it out for this
  // iteration so it cannot poison the estimator bank. Finite readings take
  // the caller's mask untouched (bit-identical legacy path when empty).
  SensorMask mask = available;
  if (!z_full.all_finite()) {
    if (mask.empty()) mask.assign(suite_.count(), true);
    for (std::size_t i = 0; i < suite_.count(); ++i) {
      const Vector block = z_full.segment(suite_.offset(i),
                                          suite_.sensor(i).dim());
      if (!block.all_finite()) mask[i] = false;
    }
  }

  const EngineResult engine_result = engine_.step(u_prev, z_full, mask);
  const Mode& mode = engine_.modes()[engine_result.selected_mode];

  // Containment floor: every mode failed supervision this iteration. The
  // engine kept its last good shared estimate; report that with a neutral
  // (statistic-0) decision instead of reading the corrupted mode outputs.
  NuiseResult fallback;
  if (engine_result.fallback_previous_estimate) {
    fallback.state = engine_.state();
    fallback.state_cov = engine_.state_cov();
    fallback.actuator_anomaly = Vector(u_prev.size());
    fallback.actuator_anomaly_cov = Matrix::identity(u_prev.size());
    fallback.correction_applied = false;
    fallback.likelihood_informative = false;
    fallback.actuator_identifiable = false;
    fallback.degraded = true;  // empty active_testing → no attribution
  }
  const NuiseResult& selected = engine_result.fallback_previous_estimate
                                    ? fallback
                                    : engine_result.selected();

  DetectionReport report;
  report.iteration = ++iteration_;
  report.selected_mode = engine_result.selected_mode;
  report.selected_mode_label = mode.label;
  report.mode_weights = engine_result.mode_weights;
  report.state_estimate = selected.state;
  report.state_covariance = selected.state_cov;
  report.decision = decision_maker_.evaluate(mode, selected);
  report.selected_result = selected;
  report.actuator_anomaly = selected.actuator_anomaly;
  report.mode_health = engine_result.mode_health;
  report.quarantined_modes = engine_result.quarantined_modes;
  report.sensor_available = mask;

  // Split the stacked testing-sensor anomaly back out by suite sensor
  // (degraded steps stack only the available testing sensors).
  report.sensor_anomaly_by_sensor.resize(suite_.count());
  std::size_t at = 0;
  for (std::size_t t : active_testing_of(mode, selected)) {
    const std::size_t dim = suite_.sensor(t).dim();
    report.sensor_anomaly_by_sensor[t] =
        selected.sensor_anomaly.segment(at, dim);
    at += dim;
  }
  return report;
}

}  // namespace roboads::core
