// Decision maker (paper §IV-D; Algorithm 1, lines 10-25).
//
// χ² hypothesis tests on the normalized anomaly-vector estimates, gated by
// sliding windows to suppress transient faults (bumps, uneven ground): an
// alarm is raised only when at least `criteria` positives occur within the
// last `window` iterations. On a confirmed sensor alarm the stacked sensor
// anomaly is split per testing sensor and each block is tested individually
// to attribute the misbehavior (lines 13-18). Actuator misbehavior is
// confirmed on the aggregate statistic only — the paper performs no
// per-actuator test (line 22-24 merely reports the per-actuator estimate
// components).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"
#include "core/engine.h"

namespace roboads::core {

struct SlidingWindowConfig {
  std::size_t window = 1;    // w
  std::size_t criteria = 1;  // c (must satisfy c <= w)
};

// Fixed-capacity sliding window of boolean test outcomes (ring buffer with a
// running positive count). Replaces the former deque-based history: pushes in
// steady state allocate nothing, and recording an outcome is an honestly
// non-const operation (the deque version was reached through a const method
// that mutated the history it was passed by reference). Slots not yet pushed
// count as negatives, matching the grow-then-trim deque semantics.
class SlidingWindow {
 public:
  SlidingWindow() = default;
  explicit SlidingWindow(const SlidingWindowConfig& cfg)
      : buf_(cfg.window, 0), criteria_(cfg.criteria) {}

  // Records the newest outcome, dropping the oldest beyond the window;
  // returns true when at least `criteria` retained outcomes are positive.
  bool push(bool positive) {
    positives_ += static_cast<std::size_t>(positive);
    positives_ -= static_cast<std::size_t>(buf_[head_] != 0);
    buf_[head_] = positive ? 1 : 0;
    head_ = (head_ + 1) % buf_.size();
    return positives_ >= criteria_;
  }

  void clear() {
    std::fill(buf_.begin(), buf_.end(), 0);
    head_ = 0;
    positives_ = 0;
  }

  // Flat serialization for the flight recorder (obs/flight_recorder.h):
  // appends [size, head, positives, slot...] to `out`.
  void save(std::vector<std::int64_t>& out) const {
    out.push_back(static_cast<std::int64_t>(buf_.size()));
    out.push_back(static_cast<std::int64_t>(head_));
    out.push_back(static_cast<std::int64_t>(positives_));
    for (unsigned char b : buf_) out.push_back(b);
  }

  // Restores a save() stream starting at `in[at]`; returns the position
  // right after this window's block. The stored size must match the
  // window's configured size — a snapshot only replays into a detector
  // built with the same configuration.
  std::size_t restore(const std::vector<std::int64_t>& in, std::size_t at) {
    ROBOADS_CHECK(at + 3 <= in.size(), "truncated sliding-window snapshot");
    ROBOADS_CHECK_EQ(in[at], static_cast<std::int64_t>(buf_.size()),
                     "sliding-window snapshot size mismatch");
    ROBOADS_CHECK(at + 3 + buf_.size() <= in.size(),
                  "truncated sliding-window snapshot");
    head_ = static_cast<std::size_t>(in[at + 1]);
    positives_ = static_cast<std::size_t>(in[at + 2]);
    ROBOADS_CHECK(head_ < buf_.size(), "sliding-window head out of range");
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      buf_[i] = in[at + 3 + i] != 0 ? 1 : 0;
    }
    return at + 3 + buf_.size();
  }

 private:
  std::vector<unsigned char> buf_ = std::vector<unsigned char>(1, 0);
  std::size_t criteria_ = 1;
  std::size_t head_ = 0;
  std::size_t positives_ = 0;
};

struct DecisionConfig {
  double sensor_alpha = 0.005;    // paper's chosen sensor confidence level
  double actuator_alpha = 0.05;   // paper's chosen actuator confidence level
  SlidingWindowConfig sensor_window{2, 2};    // paper: c/w = 2/2
  SlidingWindowConfig actuator_window{6, 3};  // paper: c/w = 3/6
};

struct SensorVerdict {
  std::size_t sensor_index = 0;  // suite index
  bool misbehaving = false;
  double statistic = 0.0;   // per-sensor χ² statistic at this iteration
  double threshold = 0.0;
  Vector anomaly_estimate;  // d̂ˢ block for this sensor
};

struct Decision {
  // Aggregate χ² statistics of the selected mode and their thresholds.
  double sensor_statistic = 0.0;
  double sensor_threshold = 0.0;
  bool sensor_test_positive = false;   // this iteration, pre-window
  bool sensor_alarm = false;           // post-window alarm

  double actuator_statistic = 0.0;
  double actuator_threshold = 0.0;
  bool actuator_test_positive = false;
  bool actuator_alarm = false;

  // Per-sensor attribution for every testing sensor of the selected mode;
  // meaningful (misbehaving may be true) only while sensor_alarm holds.
  std::vector<SensorVerdict> sensor_verdicts;
  // Suite indices confirmed misbehaving this iteration (empty if none).
  std::vector<std::size_t> misbehaving_sensors;

  Vector actuator_anomaly;  // d̂ᵃ from the selected mode
};

class DecisionMaker {
 public:
  DecisionMaker(const sensors::SensorSuite& suite, DecisionConfig config);

  const DecisionConfig& config() const { return config_; }

  // Evaluates the selected mode's NUISE outputs for this iteration.
  Decision evaluate(const Mode& mode, const NuiseResult& result);

  // Clears the sliding windows (e.g. at mission start).
  void reset();

  // Flight-recorder state capture (obs/flight_recorder.h): the sliding-
  // window contents, flat-packed in a fixed order (aggregate sensor,
  // aggregate actuator, then one window per suite sensor). restore_windows
  // requires a decision maker built with the same suite and configuration.
  void save_windows(std::vector<std::int64_t>& out) const;
  void restore_windows(const std::vector<std::int64_t>& in);

 private:
  // Cached χ² quantile lookup: `cache[dof]` when precomputed, direct
  // Newton solve beyond the precomputed range (never hit for real suites).
  static double threshold_for(const std::vector<double>& cache, double alpha,
                              std::size_t dof);

  const sensors::SensorSuite& suite_;
  DecisionConfig config_;
  SlidingWindow sensor_history_;
  SlidingWindow actuator_history_;
  // Per-suite-sensor positive history for stable attribution.
  std::vector<SlidingWindow> per_sensor_history_;
  // χ² thresholds per dof for the two fixed confidence levels: thresholds
  // are pure functions of (α, dof) and α never changes after construction,
  // so the Newton-solved quantiles are computed once instead of four times
  // per detector iteration (formerly about half the full step cost).
  std::vector<double> sensor_thresholds_;    // index = dof
  std::vector<double> actuator_thresholds_;  // index = dof
};

}  // namespace roboads::core
