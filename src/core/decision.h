// Decision maker (paper §IV-D; Algorithm 1, lines 10-25).
//
// χ² hypothesis tests on the normalized anomaly-vector estimates, gated by
// sliding windows to suppress transient faults (bumps, uneven ground): an
// alarm is raised only when at least `criteria` positives occur within the
// last `window` iterations. On a confirmed sensor alarm the stacked sensor
// anomaly is split per testing sensor and each block is tested individually
// to attribute the misbehavior (lines 13-18). Actuator misbehavior is
// confirmed on the aggregate statistic only — the paper performs no
// per-actuator test (line 22-24 merely reports the per-actuator estimate
// components).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/engine.h"

namespace roboads::core {

struct SlidingWindowConfig {
  std::size_t window = 1;    // w
  std::size_t criteria = 1;  // c (must satisfy c <= w)
};

struct DecisionConfig {
  double sensor_alpha = 0.005;    // paper's chosen sensor confidence level
  double actuator_alpha = 0.05;   // paper's chosen actuator confidence level
  SlidingWindowConfig sensor_window{2, 2};    // paper: c/w = 2/2
  SlidingWindowConfig actuator_window{6, 3};  // paper: c/w = 3/6
};

struct SensorVerdict {
  std::size_t sensor_index = 0;  // suite index
  bool misbehaving = false;
  double statistic = 0.0;   // per-sensor χ² statistic at this iteration
  double threshold = 0.0;
  Vector anomaly_estimate;  // d̂ˢ block for this sensor
};

struct Decision {
  // Aggregate χ² statistics of the selected mode and their thresholds.
  double sensor_statistic = 0.0;
  double sensor_threshold = 0.0;
  bool sensor_test_positive = false;   // this iteration, pre-window
  bool sensor_alarm = false;           // post-window alarm

  double actuator_statistic = 0.0;
  double actuator_threshold = 0.0;
  bool actuator_test_positive = false;
  bool actuator_alarm = false;

  // Per-sensor attribution for every testing sensor of the selected mode;
  // meaningful (misbehaving may be true) only while sensor_alarm holds.
  std::vector<SensorVerdict> sensor_verdicts;
  // Suite indices confirmed misbehaving this iteration (empty if none).
  std::vector<std::size_t> misbehaving_sensors;

  Vector actuator_anomaly;  // d̂ᵃ from the selected mode
};

class DecisionMaker {
 public:
  DecisionMaker(const sensors::SensorSuite& suite, DecisionConfig config);

  const DecisionConfig& config() const { return config_; }

  // Evaluates the selected mode's NUISE outputs for this iteration.
  Decision evaluate(const Mode& mode, const NuiseResult& result);

  // Clears the sliding windows (e.g. at mission start).
  void reset();

 private:
  bool window_met(std::deque<bool>& history, bool positive,
                  const SlidingWindowConfig& cfg) const;

  const sensors::SensorSuite& suite_;
  DecisionConfig config_;
  std::deque<bool> sensor_history_;
  std::deque<bool> actuator_history_;
  // Per-suite-sensor positive history for stable attribution.
  std::vector<std::deque<bool>> per_sensor_history_;
};

}  // namespace roboads::core
