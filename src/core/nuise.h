// NUISE — Nonlinear Unknown Input and State Estimation (paper Algorithm 2).
//
// One NUISE instance serves one mode: given the previous state estimate, the
// planned control commands, and the current readings, it produces
//
//   1. the actuator anomaly estimate d̂ᵃ_{k−1} from reference-sensor
//      innovations against the uncompensated prediction,
//   2. the state prediction using the *compensated* input u + d̂ᵃ, with
//      covariance propagation that accounts for the estimation of d̂ᵃ,
//   3. the minimum-variance state update from the reference sensors,
//      including the input-estimate / measurement-noise cross-correlation,
//   4. the testing-sensor anomaly estimate d̂ˢ_k = z₁ − h₁(x̂_{k|k}),
//
// plus the mode log-likelihood from the innovation under the degenerate
// Gaussian (pseudo-inverse / pseudo-determinant) density of line 20.
//
// Sign convention: the printed DSN algorithm carries inconsistent signs on
// the cross-covariance terms between lines 11–12 and 14/18 (an artifact of
// the proceedings text). We implement the re-derived filter with
// Ū := E[(x_k − x̂_{k|k−1}) ξ₂ᵀ] = −G M₂ R₂ used consistently; see
// DESIGN.md §1 for the derivation. The covariance update uses the
// generalized Joseph form, exact for any gain.
#pragma once

#include "core/mode.h"
#include "dynamics/model.h"
#include "matrix/matrix.h"
#include "sensors/sensor_model.h"

namespace roboads::core {

struct NuiseResult {
  Vector state;                  // x̂_{k|k}
  Matrix state_cov;              // Pˣ_k
  Vector actuator_anomaly;       // d̂ᵃ_{k−1}
  Matrix actuator_anomaly_cov;   // Pᵃ_{k−1}
  Vector sensor_anomaly;         // d̂ˢ_k stacked over the mode's testing
                                 // sensors (empty when none)
  Matrix sensor_anomaly_cov;     // Pˢ_k for the stacked vector
  Vector innovation;             // ν_k = z₂ − h₂(x̂_{k|k−1}), wrapped angles
  Matrix innovation_cov;         // P_{k|k−1} (line 18)
  double log_likelihood = 0.0;   // log N_k (line 20)
  // False when the reference group cannot distinguish the actuator input
  // (C₂G column-rank deficient); d̂ᵃ is then the minimum-norm estimate.
  bool actuator_identifiable = true;
};

class Nuise {
 public:
  // `model` and `suite` must outlive the estimator. `process_cov` is the
  // kinematic noise covariance Q (state_dim x state_dim).
  Nuise(const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
        Mode mode, Matrix process_cov);

  const Mode& mode() const { return mode_; }

  // One estimation iteration. `x_prev`/`p_prev` are x̂_{k−1|k−1} and
  // Pˣ_{k−1}; `u_prev` the planned commands u_{k−1}; `z_full` the full
  // stacked readings z_k (suite layout).
  NuiseResult step(const Vector& x_prev, const Matrix& p_prev,
                   const Vector& u_prev, const Vector& z_full) const;

 private:
  const dyn::DynamicModel& model_;
  const sensors::SensorSuite& suite_;
  Mode mode_;
  Matrix process_cov_;
};

}  // namespace roboads::core
