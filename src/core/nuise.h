// NUISE — Nonlinear Unknown Input and State Estimation (paper Algorithm 2).
//
// One NUISE instance serves one mode: given the previous state estimate, the
// planned control commands, and the current readings, it produces
//
//   1. the actuator anomaly estimate d̂ᵃ_{k−1} from reference-sensor
//      innovations against the uncompensated prediction,
//   2. the state prediction using the *compensated* input u + d̂ᵃ, with
//      covariance propagation that accounts for the estimation of d̂ᵃ,
//   3. the minimum-variance state update from the reference sensors,
//      including the input-estimate / measurement-noise cross-correlation,
//   4. the testing-sensor anomaly estimate d̂ˢ_k = z₁ − h₁(x̂_{k|k}),
//
// plus the mode log-likelihood from the innovation under the degenerate
// Gaussian (pseudo-inverse / pseudo-determinant) density of line 20.
//
// Sign convention: the printed DSN algorithm carries inconsistent signs on
// the cross-covariance terms between lines 11–12 and 14/18 (an artifact of
// the proceedings text). We implement the re-derived filter with
// Ū := E[(x_k − x̂_{k|k−1}) ξ₂ᵀ] = −G M₂ R₂ used consistently; see
// DESIGN.md §1 for the derivation. The covariance update uses the
// generalized Joseph form, exact for any gain.
#pragma once

#include "core/mode.h"
#include "dynamics/model.h"
#include "matrix/matrix.h"
#include "obs/metrics.h"
#include "sensors/sensor_model.h"

namespace roboads::core {

// Hot-path stage timers for one NUISE iteration (obs/timer.h). The engine
// resolves one shared set from its metrics registry and hands every
// estimator a pointer; all members null (or a null struct pointer) disables
// timing entirely. Histograms are lock-free, so the per-mode fan-out can
// record concurrently.
struct NuiseStageTimers {
  obs::Histogram* input_estimation = nullptr;  // Step 1: d̂ᵃ estimation
  obs::Histogram* predict = nullptr;           // Step 2: compensated predict
  obs::Histogram* correct = nullptr;           // Step 3: state update
  obs::Histogram* sensor_anomaly = nullptr;    // Step 4: d̂ˢ estimation
  obs::Histogram* likelihood = nullptr;        // line 20: mode likelihood

  bool any() const {
    return input_estimation != nullptr || predict != nullptr ||
           correct != nullptr || sensor_anomaly != nullptr ||
           likelihood != nullptr;
  }
  // Null-safe: a null registry yields all-null timers.
  static NuiseStageTimers resolve(obs::MetricsRegistry* metrics);
};

// Per-suite-sensor availability for one iteration: available[i] is true when
// sensor i's reading arrived on the bus (see sim/faults.h). An empty mask
// means "all available".
using SensorMask = std::vector<bool>;

struct NuiseResult {
  Vector state;                  // x̂_{k|k}
  Matrix state_cov;              // Pˣ_k
  Vector actuator_anomaly;       // d̂ᵃ_{k−1}
  Matrix actuator_anomaly_cov;   // Pᵃ_{k−1}
  Vector sensor_anomaly;         // d̂ˢ_k stacked over the mode's testing
                                 // sensors (empty when none)
  Matrix sensor_anomaly_cov;     // Pˢ_k for the stacked vector
  Vector innovation;             // ν_k = z₂ − h₂(x̂_{k|k−1}), wrapped angles
  Matrix innovation_cov;         // P_{k|k−1} (line 18)
  double log_likelihood = 0.0;   // log N_k (line 20)
  // False when the reference group cannot distinguish the actuator input
  // (C₂G column-rank deficient); d̂ᵃ is then the minimum-norm estimate.
  bool actuator_identifiable = true;

  // --- Degraded-mode bookkeeping (transport faults, sim/faults.h). ---
  // False when the mode ran a prediction-only step because its reference
  // group was entirely unavailable: the state was propagated through the
  // kinematics, no measurement correction was applied, and d̂ᵃ carries no
  // information (zeros with identity covariance → χ² statistic 0).
  bool correction_applied = true;
  // False when log_likelihood carries no information about this mode's
  // hypothesis (prediction-only step); the engine's weight update must
  // treat such modes neutrally instead of reading the 0.0 placeholder.
  bool likelihood_informative = true;
  // True when any of the mode's sensors was unavailable this iteration. If
  // set, `active_testing` lists the testing sensors actually stacked into
  // sensor_anomaly (suite indices, increasing); when false the stacking is
  // the mode's full testing set and active_testing is left empty.
  bool degraded = false;
  std::vector<std::size_t> active_testing;
};

// The testing sensors actually represented in `r.sensor_anomaly` — the
// mode's full testing set on a healthy step, the filtered set on a degraded
// one. Consumers splitting the stacked d̂ˢ must iterate this list.
inline const std::vector<std::size_t>& active_testing_of(
    const Mode& mode, const NuiseResult& r) {
  return r.degraded ? r.active_testing : mode.testing;
}

class Nuise {
 public:
  // `model` and `suite` must outlive the estimator. `process_cov` is the
  // kinematic noise covariance Q (state_dim x state_dim).
  Nuise(const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
        Mode mode, Matrix process_cov);

  const Mode& mode() const { return mode_; }

  // One estimation iteration. `x_prev`/`p_prev` are x̂_{k−1|k−1} and
  // Pˣ_{k−1}; `u_prev` the planned commands u_{k−1}; `z_full` the full
  // stacked readings z_k (suite layout).
  NuiseResult step(const Vector& x_prev, const Matrix& p_prev,
                   const Vector& u_prev, const Vector& z_full) const;

  // Degraded-mode iteration under a sensor availability mask (sized
  // suite.count(); empty = all available). With every sensor of the mode
  // available this is the exact full step — bit-identical outputs. With
  // some reference sensors missing the step runs on the remaining reference
  // subset; with the whole reference group missing it degrades to a
  // prediction-only step (propagate, skip correction, likelihood flagged
  // uninformative). Missing testing sensors are excluded from d̂ˢ and
  // recorded in `active_testing` instead of crashing on a dimension
  // mismatch.
  NuiseResult step(const Vector& x_prev, const Matrix& p_prev,
                   const Vector& u_prev, const Vector& z_full,
                   const SensorMask& available) const;

  // Attaches per-stage latency histograms (nullptr detaches; the pointee
  // must outlive the estimator). Observation only — outputs are untouched.
  void set_stage_timers(const NuiseStageTimers* timers) { timers_ = timers; }

 private:
  // Mode-invariant structure computed once at construction and reused every
  // iteration: noise-covariance blocks and stacked angle masks for the
  // mode's own reference/testing subsets, plus the model's input-envelope
  // constants and the state-sized identity. With this cache (and the
  // inline-first matrix storage) the healthy steady-state step performs
  // zero heap allocations — asserted by tests/nuise_alloc_test.cc.
  struct Workspace {
    Matrix r2;                          // R₂: noise cov, reference subset
    Matrix r1;                          // R₁: noise cov, testing subset
    std::vector<bool> ref_angle_mask;   // stacked over the reference subset
    std::vector<bool> tst_angle_mask;   // stacked over the testing subset
    Vector sat;                         // input saturation envelope
    Vector trust;                       // input trust radius
    Matrix t_prior;                     // diag(min(trust², 1e12))
    Matrix i_n;                         // identity(state_dim)
  };

  // The full estimation pass over explicit reference/testing subsets; the
  // public entry points select the subsets. `cached` is true only when
  // ref/tst are exactly the mode's own subsets, allowing the subset-
  // dependent workspace entries (R₁/R₂/angle masks) to be served from the
  // cache; degraded filtered subsets rebuild them.
  NuiseResult step_subsets(const std::vector<std::size_t>& ref,
                           const std::vector<std::size_t>& tst,
                           const Vector& x_prev, const Matrix& p_prev,
                           const Vector& u_prev, const Vector& z_full,
                           bool cached) const;

  // Prediction-only fallback when the reference group is unavailable.
  NuiseResult predict_only(const std::vector<std::size_t>& tst,
                           const Vector& x_prev, const Matrix& p_prev,
                           const Vector& u_prev, const Vector& z_full) const;

  const dyn::DynamicModel& model_;
  const sensors::SensorSuite& suite_;
  Mode mode_;
  Matrix process_cov_;
  Workspace ws_;
  const NuiseStageTimers* timers_ = nullptr;  // non-owning, may be null
};

}  // namespace roboads::core
