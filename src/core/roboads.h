// RoboADS — the complete anomaly detection system (paper Algorithm 1).
//
// Ties together the monitor (command/reading intake), the multi-mode NUISE
// estimation engine, the mode selector, and the χ²/sliding-window decision
// maker. One `step()` call per control iteration returns everything the
// planner — and the paper's Fig. 6 — needs: alarms, attributed sensors,
// anomaly quantification, mode weights, and raw test statistics.
#pragma once

#include <optional>

#include "core/decision.h"
#include "core/engine.h"

namespace roboads::core {

struct RoboAdsConfig {
  EngineConfig engine;
  DecisionConfig decision;
  // Observability is configured once on `engine.instruments` /
  // `engine.obs_label`; the detector shares those handles for its own
  // per-iteration trace events, alarm counters, and decision timer.
};

// Everything RoboADS reports for one control iteration.
struct DetectionReport {
  std::size_t iteration = 0;
  std::size_t selected_mode = 0;
  std::string selected_mode_label;
  std::vector<double> mode_weights;

  Vector state_estimate;     // x̂_{k|k} of the selected mode
  Matrix state_covariance;

  Decision decision;         // alarms, statistics, attribution

  // Runtime health (fault-tolerant runtime, docs/ROBUSTNESS.md): per-mode
  // supervision states and the sensors that actually delivered a reading
  // this iteration (empty = all).
  std::vector<ModeHealthState> mode_health;
  std::size_t quarantined_modes = 0;
  std::vector<bool> sensor_available;

  // Raw NUISE outputs of the selected mode. Kept so offline sweeps (the
  // Fig. 7 decision-parameter study) can replay a DecisionMaker with
  // different α / c / w settings without re-running the estimation.
  NuiseResult selected_result;

  // Anomaly quantification (for forensics, §III-C): d̂ˢ per suite sensor
  // (empty vector when the sensor was the reference of the selected mode)
  // and d̂ᵃ for the actuators.
  std::vector<Vector> sensor_anomaly_by_sensor;
  Vector actuator_anomaly;
};

class RoboAds {
 public:
  // `model` and `suite` must outlive the detector. `modes` defaults to the
  // one-reference-per-sensor set when empty.
  RoboAds(const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
          const Matrix& process_cov, const Vector& x0, const Matrix& p0,
          RoboAdsConfig config = {}, std::vector<Mode> modes = {});

  const std::vector<Mode>& modes() const { return engine_.modes(); }
  const Vector& state_estimate() const { return engine_.state(); }
  // Completed step() calls since construction/reset/restore — the streaming
  // session façade (fleet/session.h) uses this to cross-check that a
  // restored detector lines up with the stream position it migrated with.
  std::size_t iteration() const { return iteration_; }

  // One control iteration: planned commands u_{k−1} and the full stacked
  // sensor readings z_k (monitor intake, Algorithm 1 lines 2-3). Sensors
  // whose reading block contains a non-finite value are automatically
  // treated as unavailable for the iteration instead of poisoning the
  // estimator bank.
  DetectionReport step(const Vector& u_prev, const Vector& z_full);

  // Degraded-mode iteration under a per-sensor availability mask (empty =
  // all available; see sim/faults.h and docs/ROBUSTNESS.md).
  DetectionReport step(const Vector& u_prev, const Vector& z_full,
                       const SensorMask& available);

  // Restarts estimation for a new mission.
  void reset(const Vector& x0, const Matrix& p0);

  // Flight-recorder state capture (obs/flight_recorder.h): the full evolving
  // detector state — engine estimate/covariance/weights/health, decision
  // sliding windows, and the iteration counter — flat-packed for a ring
  // record. Restoring into a detector built with the same
  // model/suite/modes/config resumes step() bit-identically from the
  // captured point; that contract is what makes postmortem bundles
  // replayable (eval/replay.h).
  void save_state(obs::DetectorStateSnapshot& snap) const;
  void restore_state(const obs::DetectorStateSnapshot& snap);

 private:
  void emit_iteration_event(const DetectionReport& report,
                            const EngineResult& engine_result);
  void fill_flight_record(obs::FlightRecord& rec,
                          const DetectionReport& report,
                          const EngineResult& engine_result);

  const sensors::SensorSuite& suite_;
  MultiModeEngine engine_;
  DecisionMaker decision_maker_;
  std::size_t iteration_ = 0;

  // Observability (shared with the engine via config.engine.instruments;
  // all null when disabled). The "iteration" trace event is the detector's
  // per-step record: per-mode weights/likelihoods/innovation norms, χ²
  // statistics and alarms, availability mask, and mode-health codes.
  obs::Instruments instruments_;
  std::string obs_label_;
  obs::Histogram* h_decision_ = nullptr;   // decision.evaluate_ns
  obs::Counter* c_sensor_alarms_ = nullptr;
  obs::Counter* c_actuator_alarms_ = nullptr;

  // Rising-edge memory for flight-recorder bundle triggers: a bundle is
  // frozen when an alarm/quarantine condition *starts*, not on every
  // iteration it persists.
  bool prev_sensor_alarm_ = false;
  bool prev_actuator_alarm_ = false;
  bool prev_quarantined_ = false;
};

}  // namespace roboads::core
