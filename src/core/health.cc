#include "core/health.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "matrix/decomp.h"

namespace roboads::core {

const char* to_string(ModeHealthState state) {
  switch (state) {
    case ModeHealthState::kHealthy: return "healthy";
    case ModeHealthState::kDegraded: return "degraded";
    case ModeHealthState::kQuarantined: return "quarantined";
  }
  return "?";
}

char code(ModeHealthState state) {
  switch (state) {
    case ModeHealthState::kHealthy: return 'H';
    case ModeHealthState::kDegraded: return 'D';
    case ModeHealthState::kQuarantined: return 'Q';
  }
  return '?';
}

void ModeHealth::on_clean(const HealthConfig& cfg) {
  ++clean_streak;
  if (state == ModeHealthState::kQuarantined &&
      clean_streak >= cfg.quarantine_steps) {
    state = ModeHealthState::kDegraded;
    clean_streak = 0;
  } else if (state == ModeHealthState::kDegraded &&
             clean_streak >= cfg.recover_after) {
    state = ModeHealthState::kHealthy;
  }
}

void ModeHealth::on_repaired(const HealthConfig& /*cfg*/) {
  ++repairs;
  clean_streak = 0;
  if (state == ModeHealthState::kHealthy) state = ModeHealthState::kDegraded;
}

void ModeHealth::on_fatal(const HealthConfig& /*cfg*/) {
  if (state != ModeHealthState::kQuarantined) ++quarantine_count;
  state = ModeHealthState::kQuarantined;
  clean_streak = 0;
}

bool repair_covariance(Matrix& cov, const HealthConfig& cfg) {
  if (cov.empty()) return false;
  const SymmetricEigen eig = eigen_symmetric(cov.symmetrized());
  const std::size_t n = eig.eigenvalues.size();
  const double lambda_max = std::max(eig.eigenvalues[0], 0.0);
  const double scale = std::max(1.0, lambda_max);
  // Eigenvalues are sorted descending; the last is the most negative.
  if (eig.eigenvalues[n - 1] >= -cfg.psd_tol * scale) return false;

  const double floor = cfg.eigen_floor * scale;
  Matrix repaired(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double lambda = std::max(eig.eigenvalues[i], floor);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        repaired(r, c) +=
            lambda * eig.eigenvectors(r, i) * eig.eigenvectors(c, i);
      }
    }
  }
  cov = repaired.symmetrized();
  return true;
}

namespace {

// True when the `dim`-sized block anchored at `at` of the stacked anomaly
// vector and its covariance (rows and columns) is entirely finite.
bool block_finite(const NuiseResult& r, std::size_t at, std::size_t dim) {
  for (std::size_t i = 0; i < dim; ++i) {
    if (!std::isfinite(r.sensor_anomaly[at + i])) return false;
    for (std::size_t j = 0; j < r.sensor_anomaly.size(); ++j) {
      if (!std::isfinite(r.sensor_anomaly_cov(at + i, j))) return false;
      if (!std::isfinite(r.sensor_anomaly_cov(j, at + i))) return false;
    }
  }
  return true;
}

// Rebuilds the stacked d̂ˢ and its covariance keeping only the sensors in
// `keep` (given as (suite index, offset, dim) triples into the old stack).
void gather_blocks(NuiseResult& r,
                   const std::vector<std::array<std::size_t, 3>>& keep) {
  std::size_t total = 0;
  for (const auto& k : keep) total += k[2];
  Vector anomaly(total);
  Matrix cov(total, total);
  std::size_t at_i = 0;
  for (const auto& ki : keep) {
    for (std::size_t i = 0; i < ki[2]; ++i) {
      anomaly[at_i + i] = r.sensor_anomaly[ki[1] + i];
    }
    std::size_t at_j = 0;
    for (const auto& kj : keep) {
      for (std::size_t i = 0; i < ki[2]; ++i) {
        for (std::size_t j = 0; j < kj[2]; ++j) {
          cov(at_i + i, at_j + j) = r.sensor_anomaly_cov(ki[1] + i, kj[1] + j);
        }
      }
      at_j += kj[2];
    }
    at_i += ki[2];
  }
  r.sensor_anomaly = std::move(anomaly);
  r.sensor_anomaly_cov = std::move(cov);
}

}  // namespace

SupervisionOutcome supervise_result(NuiseResult& result, const Mode& mode,
                                    const sensors::SensorSuite& suite,
                                    const HealthConfig& cfg) {
  SupervisionOutcome out;
  if (!cfg.enabled) return out;

  // --- Fatal checks: quantities feeding selection and the shared estimate.
  if (!result.state.all_finite() || !result.state_cov.all_finite()) {
    out.fatal = true;
    out.detail = "non-finite state estimate or covariance";
    return out;
  }
  if (!result.actuator_anomaly.all_finite() ||
      !result.actuator_anomaly_cov.all_finite()) {
    out.fatal = true;
    out.detail = "non-finite actuator anomaly estimate";
    return out;
  }
  if (result.likelihood_informative &&
      !std::isfinite(result.log_likelihood)) {
    out.fatal = true;
    out.detail = "non-finite mode likelihood";
    return out;
  }

  // --- Repairable: mild PSD drift of the state covariance.
  if (repair_covariance(result.state_cov, cfg)) {
    out.repaired = true;
    out.detail = "state covariance eigenvalue clamp";
  }

  // --- Testing-sensor anomaly: strip non-finite blocks instead of letting
  // them poison the χ² attribution. d̂ˢ does not feed selection or the
  // shared estimate, so this degrades rather than quarantines the mode.
  if (!result.sensor_anomaly.empty() &&
      (!result.sensor_anomaly.all_finite() ||
       !result.sensor_anomaly_cov.all_finite())) {
    const std::vector<std::size_t> active =
        result.degraded ? result.active_testing : mode.testing;
    std::vector<std::array<std::size_t, 3>> keep;
    std::vector<std::size_t> kept_sensors;
    std::size_t at = 0;
    for (std::size_t t : active) {
      const std::size_t dim = suite.sensor(t).dim();
      if (block_finite(result, at, dim)) {
        keep.push_back({t, at, dim});
        kept_sensors.push_back(t);
      }
      at += dim;
    }
    gather_blocks(result, keep);
    result.degraded = true;
    result.active_testing = std::move(kept_sensors);
    out.repaired = true;
    if (!out.detail.empty()) out.detail += "; ";
    out.detail += "non-finite testing anomaly block excluded";
  }
  return out;
}

}  // namespace roboads::core
