#include "core/mode.h"

#include <algorithm>

#include "common/check.h"

namespace roboads::core {
namespace {

std::string join_names(const sensors::SensorSuite& suite,
                       const std::vector<std::size_t>& idx) {
  std::string out;
  for (std::size_t i : idx) {
    if (!out.empty()) out += "+";
    out += suite.sensor(i).name();
  }
  return out;
}

}  // namespace

std::vector<Mode> one_reference_per_sensor(
    const sensors::SensorSuite& suite) {
  ROBOADS_CHECK(suite.count() >= 1, "mode set needs at least one sensor");
  std::vector<Mode> modes;
  modes.reserve(suite.count());
  for (std::size_t i = 0; i < suite.count(); ++i) {
    Mode m;
    m.reference = {i};
    m.testing = suite.complement({i});
    m.label = "ref:" + suite.sensor(i).name();
    modes.push_back(std::move(m));
  }
  return modes;
}

std::vector<Mode> complete_mode_set(const sensors::SensorSuite& suite) {
  const std::size_t p = suite.count();
  ROBOADS_CHECK(p >= 1 && p <= 16, "complete mode set needs 1..16 sensors");
  std::vector<Mode> modes;
  for (std::size_t bits = 1; bits < (std::size_t{1} << p); ++bits) {
    Mode m;
    for (std::size_t i = 0; i < p; ++i) {
      if (bits & (std::size_t{1} << i)) {
        m.reference.push_back(i);
      } else {
        m.testing.push_back(i);
      }
    }
    m.label = "ref:" + join_names(suite, m.reference);
    modes.push_back(std::move(m));
  }
  return modes;
}

void validate_modes(const std::vector<Mode>& modes,
                    const sensors::SensorSuite& suite) {
  ROBOADS_CHECK(!modes.empty(), "mode set must be non-empty");
  for (const Mode& m : modes) {
    ROBOADS_CHECK(!m.reference.empty(),
                  "mode '" + m.label + "' has no reference sensors");
    std::vector<bool> seen(suite.count(), false);
    auto mark = [&](const std::vector<std::size_t>& idx) {
      for (std::size_t i = 0; i < idx.size(); ++i) {
        ROBOADS_CHECK(idx[i] < suite.count(),
                      "mode '" + m.label + "' index out of range");
        ROBOADS_CHECK(!seen[idx[i]],
                      "mode '" + m.label + "' repeats a sensor");
        if (i > 0)
          ROBOADS_CHECK(idx[i - 1] < idx[i],
                        "mode '" + m.label + "' indices must be sorted");
        seen[idx[i]] = true;
      }
    };
    mark(m.reference);
    mark(m.testing);
    ROBOADS_CHECK(
        std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }),
        "mode '" + m.label + "' does not cover every sensor");
  }
}

std::size_t stacked_dim(const sensors::SensorSuite& suite,
                        const std::vector<std::size_t>& subset) {
  std::size_t dim = 0;
  for (std::size_t i : subset) {
    ROBOADS_CHECK(i < suite.count(), "subset index out of range");
    dim += suite.sensor(i).dim();
  }
  return dim;
}

}  // namespace roboads::core
