// Standard Extended Kalman Filter — the no-unknown-input comparator.
//
// An EKF assumes the executed commands equal the planned commands. Under an
// actuator misbehavior its state estimate is biased by exactly the effect
// NUISE's step-1 input estimation removes; the ablation bench
// (bench/nuise_vs_ekf) measures that gap. Also serves as the library's
// plain state estimator for users who only need fusion, not detection.
#pragma once

#include "dynamics/model.h"
#include "sensors/sensor_model.h"

namespace roboads::core {

struct EkfResult {
  Vector state;
  Matrix state_cov;
  Vector innovation;
  Matrix innovation_cov;
};

class Ekf {
 public:
  // Fuses the sensors in `used` (suite indices, suite order); empty means
  // all. `model` and `suite` must outlive the filter.
  Ekf(const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
      Matrix process_cov, std::vector<std::size_t> used = {});

  // One predict-update cycle from (x̂_{k−1}, P_{k−1}) under planned input
  // u_{k−1} and full stacked readings z_k.
  EkfResult step(const Vector& x_prev, const Matrix& p_prev,
                 const Vector& u_prev, const Vector& z_full) const;

 private:
  const dyn::DynamicModel& model_;
  const sensors::SensorSuite& suite_;
  Matrix process_cov_;
  std::vector<std::size_t> used_;
};

}  // namespace roboads::core
