// Sensor-condition hypotheses ("modes", paper §IV-B).
//
// Each mode hypothesizes that a particular group of sensors — the
// *reference* sensors — is clean while all remaining sensors — the *testing*
// sensors — are potentially corrupted. One NUISE estimator runs per mode;
// the mode selector picks the hypothesis best supported by the innovations.
#pragma once

#include <string>
#include <vector>

#include "sensors/sensor_model.h"

namespace roboads::core {

struct Mode {
  std::string label;
  // Suite indices of the sensors assumed clean, strictly increasing.
  std::vector<std::size_t> reference;
  // Suite indices of the sensors under test, strictly increasing.
  std::vector<std::size_t> testing;
};

// The paper's default mode set: one mode per sensor, with that single sensor
// as the reference and all others testing ("we select modes that have only
// one reference sensor ... the number of modes M grows linearly with the
// number of sensors", §IV-B/§VI).
std::vector<Mode> one_reference_per_sensor(const sensors::SensorSuite& suite);

// The complete mode set of §VI: every non-empty reference group, i.e. every
// sensor condition except "all corrupted" — M_complete = 2^p − 1 hypotheses.
// Exposed for the mode-set ablation bench.
std::vector<Mode> complete_mode_set(const sensors::SensorSuite& suite);

// Validates a custom mode set against the suite: reference and testing must
// partition the sensors, reference non-empty, indices sorted and in range.
void validate_modes(const std::vector<Mode>& modes,
                    const sensors::SensorSuite& suite);

// Total stacked measurement dimension of a sensor subset (Σ dim over the
// subset) — the row count of the stacked reading / Jacobian / noise
// covariance the NUISE step assembles for that group.
std::size_t stacked_dim(const sensors::SensorSuite& suite,
                        const std::vector<std::size_t>& subset);

}  // namespace roboads::core
