// Observability and input-identifiability diagnostics (paper §VI "sensor
// capabilities" and "mode set selection", made executable).
//
// NUISE places two structural requirements on every mode:
//
//   1. the reference group must make the state observable — "a requirement
//     is that the reference sensors can reconstruct states";
//   2. the input must be identifiable through the reference group in one
//     step: C₂G must have full column rank, and be well-conditioned enough
//     that the d̂ᵃ estimate is usable.
//
// These checks run at configuration time (typical operating points) so that
// a designer learns *before* deployment that e.g. a magnetometer-only
// reference cannot reconstruct position, or that a pose-only reference
// cannot separate speed from steering anomalies on a car mid-turn.
#pragma once

#include "core/mode.h"
#include "dynamics/model.h"
#include "matrix/matrix.h"

namespace roboads::core {

struct ModeDiagnostics {
  std::string mode_label;
  // Rank of the N-step local observability matrix [C; CA; ...]; the state
  // is locally observable through the reference group iff this equals n.
  std::size_t observability_rank = 0;
  bool observable = false;
  // Rank of C₂G: the input directions visible in one step.
  std::size_t input_rank = 0;
  bool input_identifiable = false;
  // Conditioning of the identification: σ_min/σ_max of the noise-whitened
  // C₂G. Near-zero means some input direction is visible only through a
  // nearly-degenerate combination (e.g. speed vs steering in a hard turn).
  double input_conditioning = 0.0;
};

// Diagnoses one mode at one operating point (x, u).
ModeDiagnostics diagnose_mode(const dyn::DynamicModel& model,
                              const sensors::SensorSuite& suite,
                              const Mode& mode, const Vector& x,
                              const Vector& u,
                              std::size_t horizon = 0 /* 0 = state_dim */);

// Diagnoses every mode; `throw_on_unobservable` turns configuration errors
// into hard failures for deployment-time validation.
std::vector<ModeDiagnostics> diagnose_modes(
    const dyn::DynamicModel& model, const sensors::SensorSuite& suite,
    const std::vector<Mode>& modes, const Vector& x, const Vector& u,
    bool throw_on_unobservable = false);

}  // namespace roboads::core
