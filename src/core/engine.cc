#include "core/engine.h"

#include <algorithm>
#include <cmath>

namespace roboads::core {

MultiModeEngine::MultiModeEngine(const dyn::DynamicModel& model,
                                 const sensors::SensorSuite& suite,
                                 std::vector<Mode> modes,
                                 const Matrix& process_cov, const Vector& x0,
                                 const Matrix& p0, EngineConfig config)
    : modes_(std::move(modes)), config_(config) {
  validate_modes(modes_, suite);
  ROBOADS_CHECK(config_.likelihood_floor > 0.0 &&
                    config_.likelihood_floor < 1.0 / modes_.size(),
                "likelihood floor must lie in (0, 1/M)");
  estimators_.reserve(modes_.size());
  for (const Mode& m : modes_) {
    estimators_.emplace_back(model, suite, m, process_cov);
  }
  // A pool wider than the mode count only burns idle workers.
  pool_ = std::make_unique<common::ThreadPool>(
      std::min(common::ThreadPool::resolve_thread_count(config_.num_threads),
               modes_.size()));
  reset(x0, p0);
}

void MultiModeEngine::reset(const Vector& x0, const Matrix& p0) {
  ROBOADS_CHECK_EQ(x0.size(), p0.rows(), "initial state/covariance mismatch");
  ROBOADS_CHECK(p0.is_symmetric(1e-8), "initial covariance must be symmetric");
  state_ = x0;
  state_cov_ = p0;
  weights_.assign(modes_.size(), 1.0 / static_cast<double>(modes_.size()));
}

EngineResult MultiModeEngine::step(const Vector& u_prev,
                                   const Vector& z_full) {
  EngineResult out;
  out.per_mode.resize(modes_.size());

  // Run every mode's NUISE from the shared previous estimate. Each task
  // reads only shared immutable state (x̂_{k−1|k−1}, Pˣ, u, z) and writes
  // only its own pre-allocated slot, so the fan-out needs no atomics and
  // the per-mode results are bit-identical to the serial loop.
  pool_->parallel_for(modes_.size(), [&](std::size_t m) {
    out.per_mode[m] = estimators_[m].step(state_, state_cov_, u_prev, z_full);
  });

  // Serial reduction after the join: log-weights log(μ_m,k−1 · N_m,k) in
  // fixed mode order, so the floating-point accumulation below never
  // depends on scheduling.
  std::vector<double> log_w(modes_.size());
  for (std::size_t m = 0; m < modes_.size(); ++m) {
    log_w[m] = std::log(weights_[m]) + out.per_mode[m].log_likelihood;
  }

  // Normalize in the log domain, then apply the ε floor and renormalize so
  // no hypothesis is ever irrecoverably ruled out.
  const double max_lw = *std::max_element(log_w.begin(), log_w.end());
  double sum = 0.0;
  for (double& lw : log_w) {
    lw = std::isfinite(max_lw) ? std::exp(lw - max_lw) : 1.0;
    sum += lw;
  }
  ROBOADS_CHECK(sum > 0.0, "all mode likelihoods vanished");
  double floored_sum = 0.0;
  for (double& w : log_w) {
    w = std::max(w / sum, config_.likelihood_floor);
    floored_sum += w;
  }
  for (std::size_t m = 0; m < modes_.size(); ++m) {
    weights_[m] = log_w[m] / floored_sum;
  }

  out.mode_weights = weights_;
  out.selected_mode = static_cast<std::size_t>(
      std::max_element(weights_.begin(), weights_.end()) - weights_.begin());

  // Adopt the winning hypothesis' estimate for the next iteration
  // (Algorithm 1, line 9).
  state_ = out.per_mode[out.selected_mode].state;
  state_cov_ = out.per_mode[out.selected_mode].state_cov;
  return out;
}

}  // namespace roboads::core
