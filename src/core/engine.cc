#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/timer.h"
#include "obs/trace.h"

namespace roboads::core {

MultiModeEngine::MultiModeEngine(const dyn::DynamicModel& model,
                                 const sensors::SensorSuite& suite,
                                 std::vector<Mode> modes,
                                 const Matrix& process_cov, const Vector& x0,
                                 const Matrix& p0, EngineConfig config)
    : suite_(&suite), modes_(std::move(modes)), config_(config) {
  validate_modes(modes_, suite);
  ROBOADS_CHECK(config_.likelihood_floor > 0.0 &&
                    config_.likelihood_floor < 1.0 / modes_.size(),
                "likelihood floor must lie in (0, 1/M)");
  estimators_.reserve(modes_.size());
  for (const Mode& m : modes_) {
    estimators_.emplace_back(model, suite, m, process_cov);
  }
  // A pool wider than the mode count only burns idle workers.
  pool_ = std::make_unique<common::ThreadPool>(
      std::min(common::ThreadPool::resolve_thread_count(config_.num_threads),
               modes_.size()));

  // Resolve metric handles once; the step hot path never touches the
  // registry mutex. With no registry attached every handle stays null and
  // instrumentation compiles down to per-site null checks.
  if (obs::MetricsRegistry* metrics = config_.instruments.metrics) {
    // coarse_timers keeps the whole-step timers and counters but skips the
    // per-stage NUISE timers (no handles set → SplitTimer disabled → zero
    // clock reads inside the estimator), trading stage breakdown for the
    // always-on telemetry budget (obs/obs.h).
    if (!config_.instruments.coarse_timers) {
      stage_timers_ = NuiseStageTimers::resolve(metrics);
      for (Nuise& est : estimators_) est.set_stage_timers(&stage_timers_);
    }
    h_step_ = &metrics->histogram("engine.step_ns",
                                  obs::default_latency_bounds_ns());
    c_mode_selected_.reserve(modes_.size());
    for (const Mode& m : modes_) {
      c_mode_selected_.push_back(
          &metrics->counter("engine.mode_selected." + m.label));
    }
    c_repairs_ = &metrics->counter("engine.health_repairs");
    c_quarantine_enter_ = &metrics->counter("engine.quarantine_enter");
    c_containment_floor_ = &metrics->counter("engine.containment_floor");
    g_quarantined_ = &metrics->gauge("engine.quarantined_modes");
  }
  reset(x0, p0);
}

void MultiModeEngine::reset(const Vector& x0, const Matrix& p0) {
  ROBOADS_CHECK_EQ(x0.size(), p0.rows(), "initial state/covariance mismatch");
  ROBOADS_CHECK(p0.is_symmetric(1e-8), "initial covariance must be symmetric");
  state_ = x0;
  // Exact symmetry in, exact symmetry out: the NUISE covariance kernels
  // (sandwich / sym_rank_k_update) preserve exact symmetry of their inputs,
  // and p0 is only validated to 1e-8. Symmetrizing an already exactly
  // symmetric p0 is the identity ((a + a) / 2 == a in IEEE arithmetic).
  state_cov_ = p0.symmetrized();
  weights_.assign(modes_.size(), 1.0 / static_cast<double>(modes_.size()));
  health_.assign(modes_.size(), ModeHealth{});
  quarantined_scratch_.assign(modes_.size(), false);
  log_w_scratch_.assign(modes_.size(), 0.0);
  step_index_ = 0;
}

void MultiModeEngine::save_state(obs::DetectorStateSnapshot& snap) const {
  // Same-size writes into presized snapshot vectors: after the first call
  // on a given snapshot the capture allocates nothing (the flight-recorder
  // hot-path contract).
  snap.state.assign(state_.data(), state_.data() + state_.size());
  const std::size_t n = state_cov_.rows();
  snap.state_cov.resize(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      snap.state_cov[i * n + j] = state_cov_(i, j);
    }
  }
  snap.weights.assign(weights_.begin(), weights_.end());
  snap.health.resize(health_.size() * 4);
  for (std::size_t m = 0; m < health_.size(); ++m) {
    snap.health[4 * m + 0] = static_cast<std::int64_t>(health_[m].state);
    snap.health[4 * m + 1] =
        static_cast<std::int64_t>(health_[m].clean_streak);
    snap.health[4 * m + 2] =
        static_cast<std::int64_t>(health_[m].quarantine_count);
    snap.health[4 * m + 3] = static_cast<std::int64_t>(health_[m].repairs);
  }
  snap.iteration = static_cast<std::int64_t>(step_index_);
}

void MultiModeEngine::restore_state(const obs::DetectorStateSnapshot& snap) {
  const std::size_t n = state_.size();
  ROBOADS_CHECK_EQ(snap.state.size(), n, "snapshot state dimension mismatch");
  ROBOADS_CHECK_EQ(snap.state_cov.size(), n * n,
                   "snapshot covariance dimension mismatch");
  ROBOADS_CHECK_EQ(snap.weights.size(), modes_.size(),
                   "snapshot mode-weight count mismatch");
  ROBOADS_CHECK_EQ(snap.health.size(), modes_.size() * 4,
                   "snapshot mode-health count mismatch");
  for (std::size_t i = 0; i < n; ++i) state_[i] = snap.state[i];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      state_cov_(i, j) = snap.state_cov[i * n + j];
    }
  }
  weights_.assign(snap.weights.begin(), snap.weights.end());
  for (std::size_t m = 0; m < health_.size(); ++m) {
    const std::int64_t state_code = snap.health[4 * m + 0];
    ROBOADS_CHECK(state_code >= 0 && state_code <= 2,
                  "snapshot mode-health state out of range");
    health_[m].state = static_cast<ModeHealthState>(state_code);
    health_[m].clean_streak =
        static_cast<std::size_t>(snap.health[4 * m + 1]);
    health_[m].quarantine_count =
        static_cast<std::size_t>(snap.health[4 * m + 2]);
    health_[m].repairs = static_cast<std::size_t>(snap.health[4 * m + 3]);
  }
  step_index_ = static_cast<std::size_t>(snap.iteration);
}

EngineResult MultiModeEngine::step(const Vector& u_prev,
                                   const Vector& z_full) {
  return step_impl(u_prev, z_full, nullptr);
}

EngineResult MultiModeEngine::step(const Vector& u_prev, const Vector& z_full,
                                   const SensorMask& available) {
  if (available.empty()) return step_impl(u_prev, z_full, nullptr);
  const bool all_available =
      std::all_of(available.begin(), available.end(), [](bool b) { return b; });
  // The all-available masked step is exactly the unmasked step.
  return step_impl(u_prev, z_full, all_available ? nullptr : &available);
}

EngineResult MultiModeEngine::step_impl(const Vector& u_prev,
                                        const Vector& z_full,
                                        const SensorMask* available) {
  const std::size_t m_count = modes_.size();
  const obs::ScopedTimer step_timer(h_step_);
  const std::size_t k = step_index_++;
  EngineResult out;
  out.per_mode.resize(m_count);

  obs::TraceSink* trace = config_.instruments.trace;

  // Run every mode's NUISE from the shared previous estimate. Each task
  // reads only shared immutable state (x̂_{k−1|k−1}, Pˣ, u, z) and writes
  // only its own pre-allocated slot, so the fan-out needs no atomics and
  // the per-mode results are bit-identical to the serial loop. Quarantined
  // modes are stepped too: estimators are stateless (the shared estimate is
  // threaded in each iteration), so a clean result here is exactly the
  // evidence the supervisor needs to reinstate the mode.
  pool_->parallel_for(m_count, [&](std::size_t m) {
    out.per_mode[m] =
        available != nullptr
            ? estimators_[m].step(state_, state_cov_, u_prev, z_full,
                                  *available)
            : estimators_[m].step(state_, state_cov_, u_prev, z_full);
  });

  // --- Health supervision (serial, after the join). ---
  const bool supervise = config_.health.enabled;
  std::vector<bool>& quarantined = quarantined_scratch_;
  quarantined.assign(m_count, false);
  if (supervise) {
    for (std::size_t m = 0; m < m_count; ++m) {
      const ModeHealthState before = health_[m].state;
      const SupervisionOutcome outcome = supervise_result(
          out.per_mode[m], modes_[m], *suite_, config_.health);
      if (outcome.fatal) {
        health_[m].on_fatal(config_.health);
      } else if (outcome.repaired) {
        health_[m].on_repaired(config_.health);
      } else {
        health_[m].on_clean(config_.health);
      }
      // A mode still serving its quarantine cooldown stays excluded even
      // when its current result is clean.
      quarantined[m] = health_[m].quarantined();

      const ModeHealthState after = health_[m].state;
      if (outcome.repaired && c_repairs_ != nullptr) c_repairs_->increment();
      if (after == ModeHealthState::kQuarantined &&
          before != ModeHealthState::kQuarantined &&
          c_quarantine_enter_ != nullptr) {
        c_quarantine_enter_->increment();
      }
      if (trace != nullptr && after != before) {
        trace->emit(obs::TraceEvent("health_transition", config_.obs_label, k)
                        .add("mode", static_cast<std::int64_t>(m))
                        .add("mode_label", modes_[m].label)
                        .add("from", std::string(to_string(before)))
                        .add("to", std::string(to_string(after)))
                        .add("detail", outcome.detail));
      }
    }
  }
  std::size_t active_count = 0;
  for (std::size_t m = 0; m < m_count; ++m) {
    if (!quarantined[m]) ++active_count;
  }

  // Containment floor: every mode failed supervision at once (e.g. all
  // readings non-finite). Keep the last good shared estimate, reset the
  // weights, give every mode a fresh start next iteration — the engine
  // stays alive instead of throwing.
  if (active_count == 0) {
    weights_.assign(m_count, 1.0 / static_cast<double>(m_count));
    for (ModeHealth& h : health_) {
      h.state = ModeHealthState::kDegraded;
      h.clean_streak = 0;
    }
    out.mode_weights = weights_;
    out.selected_mode = 0;
    out.fallback_previous_estimate = true;
    out.mode_health.assign(m_count, ModeHealthState::kDegraded);
    out.quarantined_modes = 0;
    if (c_containment_floor_ != nullptr) c_containment_floor_->increment();
    if (g_quarantined_ != nullptr) g_quarantined_->set(0.0);
    if (trace != nullptr) {
      trace->emit(obs::TraceEvent("containment_floor", config_.obs_label, k)
                      .add("modes", static_cast<std::int64_t>(m_count)));
    }
    return out;
  }

  // Neutral likelihood substitute for modes whose step carried no
  // information (prediction-only under a sensor outage): the mean
  // informative log-likelihood keeps their weight ratio to the rest of the
  // bank unchanged through normalization.
  double informative_sum = 0.0;
  std::size_t informative_count = 0;
  for (std::size_t m = 0; m < m_count; ++m) {
    if (quarantined[m] || !out.per_mode[m].likelihood_informative) continue;
    informative_sum += out.per_mode[m].log_likelihood;
    ++informative_count;
  }
  const double neutral_ll =
      informative_count > 0
          ? informative_sum / static_cast<double>(informative_count)
          : 0.0;

  // Serial reduction after the join: log-weights log(μ_m,k−1 · N_m,k) in
  // fixed mode order, so the floating-point accumulation below never
  // depends on scheduling.
  std::vector<double>& log_w = log_w_scratch_;
  log_w.assign(m_count, -std::numeric_limits<double>::infinity());
  for (std::size_t m = 0; m < m_count; ++m) {
    if (quarantined[m]) continue;
    const double ll = out.per_mode[m].likelihood_informative
                          ? out.per_mode[m].log_likelihood
                          : neutral_ll;
    log_w[m] = std::log(weights_[m]) + ll;
  }

  // Normalize in the log domain, then apply the ε floor and renormalize so
  // no hypothesis is ever irrecoverably ruled out. Quarantined modes carry
  // weight 0 until the supervisor reinstates them (at which point the floor
  // lifts them back into the bank).
  double max_lw = -std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < m_count; ++m) {
    if (!quarantined[m]) max_lw = std::max(max_lw, log_w[m]);
  }
  double sum = 0.0;
  for (std::size_t m = 0; m < m_count; ++m) {
    if (quarantined[m]) {
      log_w[m] = 0.0;
      continue;
    }
    log_w[m] = std::isfinite(max_lw) ? std::exp(log_w[m] - max_lw) : 1.0;
    sum += log_w[m];
  }
  ROBOADS_CHECK(sum > 0.0, "all mode likelihoods vanished");
  double floored_sum = 0.0;
  for (std::size_t m = 0; m < m_count; ++m) {
    if (!quarantined[m]) {
      log_w[m] = std::max(log_w[m] / sum, config_.likelihood_floor);
    }
    floored_sum += log_w[m];
  }
  for (std::size_t m = 0; m < m_count; ++m) {
    weights_[m] = log_w[m] / floored_sum;
  }

  out.mode_weights = weights_;
  out.selected_mode = static_cast<std::size_t>(
      std::max_element(weights_.begin(), weights_.end()) - weights_.begin());

  // Adopt the winning hypothesis' estimate for the next iteration
  // (Algorithm 1, line 9).
  state_ = out.per_mode[out.selected_mode].state;
  state_cov_ = out.per_mode[out.selected_mode].state_cov;

  out.mode_health.resize(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    out.mode_health[m] =
        supervise ? health_[m].state : ModeHealthState::kHealthy;
    if (quarantined[m]) ++out.quarantined_modes;
  }
  if (!c_mode_selected_.empty()) {
    c_mode_selected_[out.selected_mode]->increment();
  }
  if (g_quarantined_ != nullptr) {
    g_quarantined_->set(static_cast<double>(out.quarantined_modes));
  }
  return out;
}

}  // namespace roboads::core
