#include "core/linear_baseline.h"

namespace roboads::core {

FrozenLinearModel::FrozenLinearModel(const dyn::DynamicModel& nonlinear,
                                     const Vector& x0, const Vector& u0)
    : name_("frozen_" + nonlinear.name()),
      dt_(nonlinear.dt()),
      heading_index_(nonlinear.heading_index()),
      x0_(x0),
      u0_(u0),
      f0_(nonlinear.step(x0, u0)),
      a_(nonlinear.jacobian_state(x0, u0)),
      g_(nonlinear.jacobian_input(x0, u0)) {}

Vector FrozenLinearModel::step(const Vector& x, const Vector& u) const {
  ROBOADS_CHECK_EQ(x.size(), state_dim(), "state dimension mismatch");
  ROBOADS_CHECK_EQ(u.size(), input_dim(), "input dimension mismatch");
  return f0_ + a_ * (x - x0_) + g_ * (u - u0_);
}

FrozenLinearSensor::FrozenLinearSensor(sensors::SensorPtr nonlinear,
                                       const Vector& x0)
    : inner_(std::move(nonlinear)),
      x0_(x0),
      h0_(inner_->measure(x0)),
      c_(inner_->jacobian(x0)) {}

Vector FrozenLinearSensor::measure(const Vector& x) const {
  ROBOADS_CHECK_EQ(x.size(), state_dim(), "state dimension mismatch");
  return h0_ + c_ * (x - x0_);
}

sensors::SensorSuite freeze_suite(const sensors::SensorSuite& suite,
                                  const Vector& x0) {
  std::vector<sensors::SensorPtr> frozen;
  frozen.reserve(suite.count());
  for (const sensors::SensorPtr& s : suite.sensors()) {
    frozen.push_back(std::make_shared<FrozenLinearSensor>(s, x0));
  }
  return sensors::SensorSuite(std::move(frozen));
}

}  // namespace roboads::core
