#include "sim/lidar.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/geometry.h"

namespace roboads::sim {

using geom::Vec2;

LidarScanner::LidarScanner(const LidarConfig& config) : config_(config) {
  ROBOADS_CHECK(config_.beam_count >= 2, "lidar needs at least 2 beams");
  ROBOADS_CHECK(config_.fov > 0.0 && config_.fov <= 2.0 * M_PI,
                "lidar FOV must lie in (0, 2π]");
  ROBOADS_CHECK(config_.max_range > 0.0, "lidar max range must be positive");
  ROBOADS_CHECK(config_.range_noise_stddev >= 0.0,
                "lidar noise must be non-negative");
}

double LidarScanner::beam_angle(std::size_t beam) const {
  ROBOADS_CHECK(beam < config_.beam_count, "beam index out of range");
  const double frac = static_cast<double>(beam) /
                      static_cast<double>(config_.beam_count - 1);
  return (frac - 0.5) * config_.fov;
}

Vector LidarScanner::scan(const World& world, const Vector& pose,
                          Rng& rng) const {
  ROBOADS_CHECK(pose.size() >= 3, "lidar pose needs (x, y, θ)");
  const Vec2 origin{pose[0], pose[1]};
  Vector ranges(config_.beam_count);
  for (std::size_t i = 0; i < config_.beam_count; ++i) {
    const double global_angle = pose[2] + beam_angle(i);
    double r = world.raycast(origin, global_angle, config_.max_range);
    if (r < config_.max_range) {
      r += rng.gaussian(0.0, config_.range_noise_stddev);
      r = std::clamp(r, 0.0, config_.max_range);
    }
    ranges[i] = r;
  }
  return ranges;
}

ScanProcessor::ScanProcessor(const ScanProcessorConfig& config,
                             double arena_width, double arena_height,
                             std::vector<geom::Aabb> obstacles)
    : config_(config),
      arena_width_(arena_width),
      arena_height_(arena_height),
      obstacles_(std::move(obstacles)) {
  ROBOADS_CHECK(arena_width_ > 0.0 && arena_height_ > 0.0,
                "arena dimensions must be positive");
  ROBOADS_CHECK(config_.min_points >= 2, "line needs at least 2 points");
}

namespace {

// Recursive split step of split-and-merge (iterative end-point fit).
void split_chunk(const std::vector<Vec2>& pts, std::size_t first,
                 std::size_t last, double threshold, std::size_t min_points,
                 std::vector<std::pair<std::size_t, std::size_t>>& out) {
  const std::size_t count = last - first + 1;
  if (count < min_points) return;
  const Vec2& a = pts[first];
  const Vec2& b = pts[last];
  const geom::Segment chord{a, b};
  double worst = -1.0;
  std::size_t worst_idx = first;
  for (std::size_t i = first + 1; i < last; ++i) {
    const double d = chord.distance_to(pts[i]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > threshold) {
    split_chunk(pts, first, worst_idx, threshold, min_points, out);
    split_chunk(pts, worst_idx, last, threshold, min_points, out);
  } else {
    out.emplace_back(first, last);
  }
}

struct WallHypothesis {
  std::size_t output_slot;   // 0=west, 1=south, 2=east, 3=north (θ only)
  double global_perp_angle;  // direction from interior toward the wall
  double expected_distance;  // from the hint pose
};

}  // namespace

std::vector<ExtractedLine> ScanProcessor::extract_lines(
    const LidarScanner& scanner, const Vector& ranges) const {
  const LidarConfig& lc = scanner.config();
  ROBOADS_CHECK_EQ(ranges.size(), lc.beam_count, "scan size mismatch");

  // Valid returns to robot-frame points, preserving beam order; track range
  // discontinuities to pre-chunk the scan.
  std::vector<Vec2> pts;
  std::vector<std::size_t> chunk_starts;  // index into pts
  pts.reserve(lc.beam_count);
  double prev_range = -1.0;
  bool prev_valid = false;
  for (std::size_t i = 0; i < lc.beam_count; ++i) {
    const double r = ranges[i];
    const bool valid = r >= config_.min_valid_range && r < lc.max_range * 0.999;
    if (!valid) {
      prev_valid = false;
      continue;
    }
    if (!prev_valid || std::abs(r - prev_range) > config_.jump_threshold) {
      chunk_starts.push_back(pts.size());
    }
    const double a = scanner.beam_angle(i);
    pts.push_back({r * std::cos(a), r * std::sin(a)});
    prev_range = r;
    prev_valid = true;
  }
  chunk_starts.push_back(pts.size());  // sentinel

  std::vector<ExtractedLine> lines;
  for (std::size_t c = 0; c + 1 < chunk_starts.size(); ++c) {
    const std::size_t first = chunk_starts[c];
    const std::size_t last_excl = chunk_starts[c + 1];
    if (last_excl - first < config_.min_points) continue;
    std::vector<std::pair<std::size_t, std::size_t>> segments;
    split_chunk(pts, first, last_excl - 1, config_.split_threshold,
                config_.min_points, segments);
    for (const auto& [s, e] : segments) {
      std::vector<Vec2> seg_pts(pts.begin() + s, pts.begin() + e + 1);
      const geom::FittedLine fit = geom::fit_line(seg_pts);
      // Perpendicular foot from the robot (origin in the robot frame).
      const double along = fit.point.dot(fit.direction);
      const Vec2 foot = fit.point - fit.direction * along;
      const double dist = foot.norm();
      if (dist < config_.min_valid_range) continue;
      ExtractedLine line;
      line.distance = dist;
      line.perp_angle = std::atan2(foot.y, foot.x);
      line.points = seg_pts.size();
      line.rms_error = fit.rms_error;
      lines.push_back(line);
    }
  }
  return lines;
}

std::optional<Vector> ScanProcessor::relocalize(
    const std::vector<ExtractedLine>& lines, double stale_theta) const {
  // Look for a pair of opposite lines whose distances sum to one of the
  // arena spans: r_west + r_east = W or r_south + r_north = H. That
  // identifies the axis; the stale heading resolves the remaining 180°
  // rotational ambiguity of the rectangle.
  constexpr double kSumTol = 0.08;
  constexpr double kOppositeTol = 0.2;  // deviation from π between perps
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double perp_gap = std::abs(geom::angle_diff(
          lines[i].perp_angle, lines[j].perp_angle));
      if (std::abs(perp_gap - M_PI) > kOppositeTol) continue;
      const double sum = lines[i].distance + lines[j].distance;
      const bool x_axis = std::abs(sum - arena_width_) < kSumTol;
      const bool y_axis = std::abs(sum - arena_height_) < kSumTol;
      if (!x_axis && !y_axis) continue;
      if (x_axis && y_axis) continue;  // square-ish arena: ambiguous pair
      // Hypothesis A: line i is the lower wall of the axis (west/south).
      const double wall_angle = x_axis ? M_PI : -M_PI / 2.0;
      const double theta_a =
          geom::wrap_angle(wall_angle - lines[i].perp_angle);
      const double theta_b = geom::wrap_angle(theta_a + M_PI);
      const double theta =
          std::abs(geom::angle_diff(theta_a, stale_theta)) <=
                  std::abs(geom::angle_diff(theta_b, stale_theta))
              ? theta_a
              : theta_b;
      // With θ fixed, assign every line to its nearest wall by angle and
      // read the position off the west/east and south/north distances.
      Vector pose(3);
      pose[0] = arena_width_ / 2.0;
      pose[1] = arena_height_ / 2.0;
      pose[2] = theta;
      for (const ExtractedLine& line : lines) {
        const double global_perp =
            geom::wrap_angle(line.perp_angle + theta);
        if (std::abs(geom::angle_diff(global_perp, M_PI)) <
            config_.angle_gate) {
          pose[0] = line.distance;  // west
        } else if (std::abs(geom::angle_diff(global_perp, -M_PI / 2.0)) <
                   config_.angle_gate) {
          pose[1] = line.distance;  // south
        }
      }
      return pose;
    }
  }
  return std::nullopt;
}

ProcessedScan ScanProcessor::process(const LidarScanner& scanner,
                                     const Vector& ranges,
                                     const Vector& hint_pose) const {
  ROBOADS_CHECK(hint_pose.size() >= 3, "hint pose needs (x, y, θ)");
  double hx = hint_pose[0];
  double hy = hint_pose[1];
  double htheta = hint_pose[2];

  ProcessedScan out;
  const std::vector<ExtractedLine> lines = extract_lines(scanner, ranges);
  out.lines_extracted = lines.size();

  // When the track was lost (e.g. across a DoS outage) the stale hint can
  // sit outside every matching gate. Re-localize from the scan itself —
  // opposite-wall distance sums identify the axes; the stale heading only
  // breaks the rectangle's 180° symmetry — and run the gated matching from
  // the fresh pose. First pass with the regular hint stays authoritative
  // when it still matches (cheap) — the relocalization result below is used
  // purely as a fallback hint.
  std::optional<Vector> relock;
  if (!lines.empty()) {
    relock = relocalize(lines, htheta);
  }

  // Greedy best-line-per-wall assignment behind angle + distance gates,
  // parameterized by the hint pose.
  const ExtractedLine* matched[4] = {nullptr, nullptr, nullptr, nullptr};
  const auto match_walls = [&](double px, double py, double ptheta) {
    WallHypothesis walls[] = {
        {0, M_PI, px},                        // west  (x = 0)
        {1, -M_PI / 2.0, py},                 // south (y = 0)
        {2, 0.0, arena_width_ - px},          // east  (x = W)
        {3, M_PI / 2.0, arena_height_ - py},  // north (θ support only)
    };
    for (auto& slot : matched) slot = nullptr;
    bool any = false;
    for (const ExtractedLine& line : lines) {
      const double global_perp = geom::wrap_angle(line.perp_angle + ptheta);
      for (const WallHypothesis& w : walls) {
        if (std::abs(geom::angle_diff(global_perp, w.global_perp_angle)) >
            config_.angle_gate) {
          continue;
        }
        if (std::abs(line.distance - w.expected_distance) >
            config_.range_gate) {
          continue;
        }
        const ExtractedLine*& slot = matched[w.output_slot];
        if (slot == nullptr || line.points > slot->points) slot = &line;
        any = true;
      }
    }
    return any;
  };

  out.any_wall_matched = match_walls(hx, hy, htheta);
  if (!out.any_wall_matched && relock.has_value()) {
    // The track is lost (e.g. the pose drifted across a DoS outage):
    // restart the match from the scan's own localization solution.
    hx = (*relock)[0];
    hy = (*relock)[1];
    htheta = (*relock)[2];
    out.any_wall_matched = match_walls(hx, hy, htheta);
  }
  if (!out.any_wall_matched) {
    // Nothing recognizable in the scan (e.g. DoS'd ranges): the workflow
    // reports zeros in every direction, matching scenario #6's symptom.
    return out;
  }

  // Heading estimate from the matched walls (circular mean of θ = wall_perp
  // − β weighted by supporting points); recomputed after the consistency
  // passes below may drop matches.
  static constexpr double kWallPerpAngles[4] = {M_PI, -M_PI / 2.0, 0.0,
                                                M_PI / 2.0};
  const auto heading_from_matches = [&]() {
    double sin_acc = 0.0, cos_acc = 0.0;
    for (std::size_t w = 0; w < 4; ++w) {
      const ExtractedLine* line = matched[w];
      if (line == nullptr) continue;
      const double theta =
          geom::wrap_angle(kWallPerpAngles[w] - line->perp_angle);
      const double weight = static_cast<double>(line->points);
      sin_acc += weight * std::sin(theta);
      cos_acc += weight * std::cos(theta);
    }
    return std::atan2(sin_acc, cos_acc);
  };
  double theta_est = heading_from_matches();

  // Per-axis coordinate estimation by hypothesis scoring over every aligned
  // line, each interpretable as the lower wall, the upper wall, or a face
  // of a known map obstacle (§V-A: the mission map is available to every
  // consumer). Every interpretation proposes a robot coordinate; the
  // candidate explaining the scan with the least point-weighted residual
  // wins. This resolves wall-vs-obstacle ambiguities and poisoned-track
  // lock-ins in one mechanism. An *unknown* obstruction (scenario #7's
  // board over the sensor window) is not in the map, so its well-supported
  // line simply wins as "the wall" — producing the paper's incorrect-
  // distance symptom instead of being silently repaired.
  struct AlignedLine {
    const ExtractedLine* line;
    bool lower;  // aligned with the lower wall's perp direction
  };
  const auto axis_lines = [&](std::size_t lower_slot,
                              std::size_t upper_slot) {
    std::vector<AlignedLine> out_lines;
    for (const ExtractedLine& line : lines) {
      const double global_perp =
          geom::wrap_angle(line.perp_angle + theta_est);
      if (std::abs(geom::angle_diff(
              global_perp, kWallPerpAngles[lower_slot])) <=
          config_.angle_gate) {
        out_lines.push_back({&line, true});
      } else if (std::abs(geom::angle_diff(
                     global_perp, kWallPerpAngles[upper_slot])) <=
                 config_.angle_gate) {
        out_lines.push_back({&line, false});
      }
    }
    return out_lines;
  };

  struct AxisEstimate {
    bool resolved = false;
    double coordinate = 0.0;       // robot position along the axis
    const ExtractedLine* lower_wall = nullptr;  // line explained as walls
    const ExtractedLine* upper_wall = nullptr;
  };
  // `lo_faces`/`hi_faces` are the obstacle-face coordinates visible when
  // looking toward the lower/upper wall (e.g. for y: tops o.max.y seen from
  // above; bottoms o.min.y seen from below).
  const auto estimate_axis = [&](std::size_t lower_slot,
                                 std::size_t upper_slot, double span,
                                 const std::vector<double>& lo_faces,
                                 const std::vector<double>& hi_faces,
                                 double hint_coord) {
    constexpr double kResidualTol = 0.08;
    constexpr double kUnexplained = 0.2;  // capped residual per point
    // Continuity tie-breaker: when an occlusion leaves two configurations
    // that both explain the scan (e.g. robot west vs east of an obstacle),
    // prefer the one near the track. Weighted far below the geometric
    // evidence so a poisoned track cannot override a contradicting scan.
    constexpr double kHintWeight = 2.0;  // err-points per meter
    const std::vector<AlignedLine> aligned =
        axis_lines(lower_slot, upper_slot);
    AxisEstimate best;
    if (aligned.empty()) return best;

    // Candidate coordinates from every interpretation of every line.
    std::vector<double> candidates;
    for (const AlignedLine& al : aligned) {
      const double d = al.line->distance;
      if (al.lower) {
        candidates.push_back(d);  // lower wall
        for (double f : lo_faces) candidates.push_back(d + f);
      } else {
        candidates.push_back(span - d);  // upper wall
        for (double f : hi_faces) candidates.push_back(f - d);
      }
    }

    double best_err = std::numeric_limits<double>::infinity();
    for (double c : candidates) {
      if (c < 0.0 || c > span) continue;
      double err = kHintWeight * std::abs(c - hint_coord);
      const ExtractedLine* lower_wall = nullptr;
      const ExtractedLine* upper_wall = nullptr;
      for (const AlignedLine& al : aligned) {
        const double d = al.line->distance;
        double resid;
        bool as_wall;
        if (al.lower) {
          resid = std::abs(d - c);
          as_wall = true;
          for (double f : lo_faces) {
            if (c > f && std::abs(d - (c - f)) < resid) {
              resid = std::abs(d - (c - f));
              as_wall = false;
            }
          }
        } else {
          resid = std::abs(d - (span - c));
          as_wall = true;
          for (double f : hi_faces) {
            if (c < f && std::abs(d - (f - c)) < resid) {
              resid = std::abs(d - (f - c));
              as_wall = false;
            }
          }
        }
        const double weight = static_cast<double>(al.line->points);
        if (resid > kResidualTol) {
          err += weight * kUnexplained;
          continue;
        }
        err += weight * resid;
        if (as_wall) {
          const ExtractedLine*& slot = al.lower ? lower_wall : upper_wall;
          if (slot == nullptr || al.line->points > slot->points) {
            slot = al.line;
          }
        }
      }
      if (err < best_err) {
        best_err = err;
        best.resolved = lower_wall != nullptr || upper_wall != nullptr;
        best.coordinate = c;
        best.lower_wall = lower_wall;
        best.upper_wall = upper_wall;
      }
    }
    return best;
  };

  std::vector<double> east_faces, west_faces, top_faces, bottom_faces;
  for (const geom::Aabb& o : obstacles_) {
    east_faces.push_back(o.max.x);    // seen looking west from x > o.max.x
    west_faces.push_back(o.min.x);    // seen looking east from x < o.min.x
    top_faces.push_back(o.max.y);     // seen looking south from above
    bottom_faces.push_back(o.min.y);  // seen looking north from below
  }
  const AxisEstimate x_axis =
      estimate_axis(0, 2, arena_width_, east_faces, west_faces, hx);
  const AxisEstimate y_axis =
      estimate_axis(1, 3, arena_height_, top_faces, bottom_faces, hy);

  // Adopt the wall assignments for the final heading estimate.
  matched[0] = x_axis.lower_wall;
  matched[2] = x_axis.upper_wall;
  matched[1] = y_axis.lower_wall;
  matched[3] = y_axis.upper_wall;
  out.any_wall_matched = x_axis.resolved || y_axis.resolved;
  if (!out.any_wall_matched) return out;
  theta_est = heading_from_matches();

  // Distances from the axis estimates; an unresolved axis coasts on the
  // workflow's own track (never fed back into the matcher's geometry).
  const double x = x_axis.resolved ? x_axis.coordinate : hx;
  const double y = y_axis.resolved ? y_axis.coordinate : hy;
  out.all_walls_matched =
      x_axis.lower_wall != nullptr && x_axis.upper_wall != nullptr &&
      y_axis.lower_wall != nullptr;
  out.reading[0] = x;
  out.reading[1] = y;
  out.reading[2] = arena_width_ - x;
  out.reading[3] = theta_est;
  return out;
}

}  // namespace roboads::sim
