// The experiment arena: a rectangular walled area with axis-aligned
// obstacles, mirroring the paper's indoor Vicon room (Fig. 5b). Provides the
// collision queries used by the RRT* planner and the ray casting used by the
// LiDAR simulation.
#pragma once

#include <optional>
#include <vector>

#include "geometry/geometry.h"

namespace roboads::sim {

class World {
 public:
  // Arena [0, width] x [0, height] with interior obstacles.
  World(double width, double height, std::vector<geom::Aabb> obstacles = {});

  double width() const { return width_; }
  double height() const { return height_; }
  const std::vector<geom::Aabb>& obstacles() const { return obstacles_; }

  // True when `p`, padded by `radius`, lies inside the arena and clear of
  // every obstacle.
  bool free(const geom::Vec2& p, double radius = 0.0) const;

  // True when the straight move a→b stays free for a robot of `radius`.
  bool segment_free(const geom::Vec2& a, const geom::Vec2& b,
                    double radius = 0.0) const;

  // Distance from `origin` along `angle` (global frame) to the first wall or
  // obstacle hit, clipped at max_range.
  double raycast(const geom::Vec2& origin, double angle,
                 double max_range) const;

  // The four arena wall segments.
  const std::vector<geom::Segment>& walls() const { return walls_; }

 private:
  double width_;
  double height_;
  std::vector<geom::Aabb> obstacles_;
  std::vector<geom::Segment> walls_;
};

}  // namespace roboads::sim
