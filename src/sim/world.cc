#include "sim/world.h"

#include <cmath>

#include "common/check.h"

namespace roboads::sim {

World::World(double width, double height, std::vector<geom::Aabb> obstacles)
    : width_(width), height_(height), obstacles_(std::move(obstacles)) {
  ROBOADS_CHECK(width_ > 0.0 && height_ > 0.0, "arena must have positive size");
  for (const geom::Aabb& o : obstacles_) {
    ROBOADS_CHECK(o.min.x >= 0.0 && o.min.y >= 0.0 && o.max.x <= width_ &&
                      o.max.y <= height_,
                  "obstacle outside the arena");
  }
  const geom::Vec2 bl{0.0, 0.0};
  const geom::Vec2 br{width_, 0.0};
  const geom::Vec2 tr{width_, height_};
  const geom::Vec2 tl{0.0, height_};
  walls_ = {{bl, br}, {br, tr}, {tr, tl}, {tl, bl}};
}

bool World::free(const geom::Vec2& p, double radius) const {
  if (p.x < radius || p.y < radius || p.x > width_ - radius ||
      p.y > height_ - radius) {
    return false;
  }
  for (const geom::Aabb& o : obstacles_) {
    if (o.inflated(radius).contains(p)) return false;
  }
  return true;
}

bool World::segment_free(const geom::Vec2& a, const geom::Vec2& b,
                         double radius) const {
  if (!free(a, radius) || !free(b, radius)) return false;
  for (const geom::Aabb& o : obstacles_) {
    if (o.inflated(radius).intersects_segment(a, b)) return false;
  }
  return true;
}

double World::raycast(const geom::Vec2& origin, double angle,
                      double max_range) const {
  ROBOADS_CHECK(max_range > 0.0, "raycast needs positive max range");
  const geom::Vec2 dir{std::cos(angle), std::sin(angle)};
  double best = max_range;
  for (const geom::Segment& w : walls_) {
    if (const auto t = geom::ray_segment_intersection(origin, dir, w)) {
      best = std::min(best, *t);
    }
  }
  for (const geom::Aabb& o : obstacles_) {
    for (const geom::Segment& e : o.edges()) {
      if (const auto t = geom::ray_segment_intersection(origin, dir, e)) {
        best = std::min(best, *t);
      }
    }
  }
  return best;
}

}  // namespace roboads::sim
