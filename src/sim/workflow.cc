#include "sim/workflow.h"

#include "obs/timer.h"

namespace roboads::sim {

void SensingWorkflow::attach_output_injector(attacks::InjectorPtr injector) {
  ROBOADS_CHECK(injector != nullptr, "null injector");
  output_injectors_.push_back(std::move(injector));
}

Vector SensingWorkflow::apply_output_injectors(std::size_t k,
                                               Vector reading) {
  for (const attacks::InjectorPtr& inj : output_injectors_) {
    inj->apply(k, reading);
  }
  return reading;
}

DirectSensingWorkflow::DirectSensingWorkflow(sensors::SensorPtr model)
    : model_(std::move(model)), noise_([&] {
        ROBOADS_CHECK(model_ != nullptr, "null sensor model");
        return model_->noise_covariance();
      }()) {}

Vector DirectSensingWorkflow::sense(std::size_t k, const Vector& x_true,
                                    Rng& rng) {
  Vector reading = model_->measure(x_true) + noise_.sample(rng);
  return apply_output_injectors(k, std::move(reading));
}

LidarSensingWorkflow::LidarSensingWorkflow(const World& world,
                                           LidarConfig lidar_config,
                                           ScanProcessorConfig processor_config,
                                           const Vector& initial_pose,
                                           const Vector& output_noise_stddev)
    : world_(world),
      scanner_(lidar_config),
      processor_(processor_config, world.width(), world.height(),
                 world.obstacles()),
      initial_pose_(initial_pose),
      hint_pose_(initial_pose) {
  ROBOADS_CHECK(initial_pose.size() >= 3, "initial pose needs (x, y, θ)");
  if (!output_noise_stddev.empty()) {
    ROBOADS_CHECK_EQ(output_noise_stddev.size(), std::size_t{4},
                     "lidar output noise needs 4 components");
    Vector var(4);
    for (std::size_t i = 0; i < 4; ++i)
      var[i] = output_noise_stddev[i] * output_noise_stddev[i];
    output_noise_.emplace(Matrix::diagonal(var));
  }
}

void LidarSensingWorkflow::attach_raw_injector(attacks::InjectorPtr injector) {
  ROBOADS_CHECK(injector != nullptr, "null injector");
  raw_injectors_.push_back(std::move(injector));
}

void LidarSensingWorkflow::reset() { hint_pose_ = initial_pose_; }

Vector LidarSensingWorkflow::sense(std::size_t k, const Vector& x_true,
                                   Rng& rng) {
  Vector ranges = scanner_.scan(world_, x_true, rng);
  for (const attacks::InjectorPtr& inj : raw_injectors_) {
    inj->apply(k, ranges);
  }
  const ProcessedScan processed =
      processor_.process(scanner_, ranges, hint_pose_);
  if (processed.any_wall_matched) {
    // Advance the private track from the workflow's own output: west and
    // south distances are x and y, θ from the wall fit.
    hint_pose_ = Vector{processed.reading[0], processed.reading[1],
                        processed.reading[3]};
  }
  Vector reading = processed.reading;
  if (output_noise_ && processed.any_wall_matched) {
    reading += output_noise_->sample(rng);
  }
  return apply_output_injectors(k, std::move(reading));
}

ScenarioBatchRunner::ScenarioBatchRunner(WorkflowConfig config)
    : pool_(common::ThreadPool::resolve_thread_count(config.num_threads)) {
  if (obs::MetricsRegistry* metrics = config.instruments.metrics) {
    h_task_ = &metrics->histogram("batch.task_ns",
                                  obs::default_latency_bounds_ns());
    c_failures_ = &metrics->counter("batch.task_failures");
  }
}

void ScenarioBatchRunner::run(std::size_t count,
                              const std::function<void(std::size_t)>& task) {
  pool_.parallel_for(count, [&](std::size_t i) {
    const obs::ScopedTimer task_timer(h_task_);
    task(i);
  });
}

std::vector<TaskFailure> ScenarioBatchRunner::run_contained(
    std::size_t count, const std::function<void(std::size_t)>& task) {
  std::vector<std::optional<TaskFailure>> slots(count);
  pool_.parallel_for(count, [&](std::size_t i) {
    const obs::ScopedTimer task_timer(h_task_);
    try {
      task(i);
    } catch (const std::exception& e) {
      slots[i] = TaskFailure{i, e.what()};
      if (c_failures_ != nullptr) c_failures_->increment();
    }
  });
  std::vector<TaskFailure> failures;
  for (std::optional<TaskFailure>& slot : slots) {
    if (slot.has_value()) failures.push_back(std::move(*slot));
  }
  return failures;
}

void ActuationWorkflow::attach_injector(attacks::InjectorPtr injector) {
  ROBOADS_CHECK(injector != nullptr, "null injector");
  injectors_.push_back(std::move(injector));
}

Vector ActuationWorkflow::execute(std::size_t k, const Vector& planned) {
  Vector executed = planned;
  for (const attacks::InjectorPtr& inj : injectors_) {
    inj->apply(k, executed);
  }
  return executed;
}

}  // namespace roboads::sim
