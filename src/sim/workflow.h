// Sensing and actuation workflows (paper Fig. 1).
//
// A sensing workflow owns everything between the physical signal and the
// reading the planner receives: signal capture, digitization, processing,
// encoding. Workflows run isolated from each other (§II-A's modular-design
// assumption), which in this library means each workflow is its own object
// holding its own state and its own attack injectors — corrupting one never
// touches another.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/injector.h"
#include "common/thread_pool.h"
#include "obs/obs.h"
#include "random/rng.h"
#include "sensors/sensor_model.h"
#include "sim/lidar.h"
#include "sim/world.h"

namespace roboads::sim {

class SensingWorkflow {
 public:
  virtual ~SensingWorkflow() = default;

  // Must equal the matching SensorModel's name in the estimator suite.
  virtual std::string name() const = 0;
  virtual std::size_t dim() const = 0;

  // Produces the reading delivered to the planner for iteration k, given
  // the true robot state — including noise and any active corruption.
  virtual Vector sense(std::size_t k, const Vector& x_true, Rng& rng) = 0;

  // Attaches an injector to the processed output (cyber-channel corruption
  // of the utility process / bus packet).
  void attach_output_injector(attacks::InjectorPtr injector);

  virtual void reset() {}

 protected:
  Vector apply_output_injectors(std::size_t k, Vector reading);

 private:
  std::vector<attacks::InjectorPtr> output_injectors_;
};

// Workflow for sensors whose reading is h(x_true) + noise directly: the IPS
// (Vicon), wheel-encoder odometry pose, and IMU inertial navigation.
class DirectSensingWorkflow final : public SensingWorkflow {
 public:
  explicit DirectSensingWorkflow(sensors::SensorPtr model);

  std::string name() const override { return model_->name(); }
  std::size_t dim() const override { return model_->dim(); }
  Vector sense(std::size_t k, const Vector& x_true, Rng& rng) override;

 private:
  sensors::SensorPtr model_;
  GaussianSampler noise_;
};

// The LiDAR workflow: ray-cast scan → (optional raw-scan corruption) →
// split-and-merge line extraction → wall matching → navigation reading →
// (optional processed-output corruption). Keeps its own pose track as the
// wall-matching hint, isolated from the rest of the system.
class LidarSensingWorkflow final : public SensingWorkflow {
 public:
  // `output_noise_stddev` (4 components, may be empty for none) adds
  // processing noise to the navigation reading so the workflow's total
  // error budget matches the estimator-side measurement model R — the
  // geometric line extraction alone is far less noisy than a real
  // reflectivity-, incidence- and clutter-limited pipeline.
  LidarSensingWorkflow(const World& world, LidarConfig lidar_config,
                       ScanProcessorConfig processor_config,
                       const Vector& initial_pose,
                       const Vector& output_noise_stddev = Vector());

  std::string name() const override { return "lidar"; }
  std::size_t dim() const override { return 4; }
  Vector sense(std::size_t k, const Vector& x_true, Rng& rng) override;

  void attach_raw_injector(attacks::InjectorPtr injector);
  void reset() override;

  const LidarScanner& scanner() const { return scanner_; }

 private:
  const World& world_;
  LidarScanner scanner_;
  ScanProcessor processor_;
  std::vector<attacks::InjectorPtr> raw_injectors_;
  Vector initial_pose_;
  Vector hint_pose_;  // the workflow's private track
  std::optional<GaussianSampler> output_noise_;
};

// Batched workflow execution.
//
// The evaluation sweeps behind Table II / Table IV run many missions that
// share nothing mutable: each (scenario, seed) task owns its own workflows,
// injectors, simulator, and Rng stream, so the batch is embarrassingly
// parallel. WorkflowConfig sizes the pool; ScenarioBatchRunner distributes
// index-addressed tasks over it. Tasks must write results only into their
// own pre-allocated slot — with the reduction done serially afterwards the
// batch output is identical for every thread count.
struct WorkflowConfig {
  // 0 = hardware concurrency, 1 = serial (no threads spawned), n = n-way.
  std::size_t num_threads = 0;
  // Observability handles (obs/obs.h; null = off). The runner records a
  // per-task wall-time histogram and a contained-failure counter; batch
  // callers additionally thread the handles into each mission's config.
  // Any `recorder` handle here is never shared across jobs — the flight-
  // recorder ring is a single mission timeline, so batch callers construct
  // one private recorder per job from `recorder` below instead.
  obs::Instruments instruments;
  // Per-job flight recording (obs/flight_recorder.h): when enabled, every
  // batch job runs with its own FlightRecorder of this configuration and
  // the bundles it freezes land on the job's result slot.
  obs::FlightRecorderConfig recorder;
  // When non-empty, frozen bundles are additionally written as JSONL files
  // named `record_out + bundle_filename(...)` after the batch joins (set it
  // to "dir/" or "dir/prefix-").
  std::string record_out;
};

// One contained task failure from ScenarioBatchRunner::run_contained.
struct TaskFailure {
  std::size_t index = 0;  // the failing task's index
  std::string what;       // the caught exception's message
};

class ScenarioBatchRunner {
 public:
  explicit ScenarioBatchRunner(WorkflowConfig config = {});

  // Concurrency actually in use (num_threads = 0 resolved).
  std::size_t worker_count() const { return pool_.size(); }

  // Runs task(i) exactly once for each i in [0, count) across the pool and
  // blocks until all are done. Rethrows the lowest failing task's
  // exception. Each task must build its own Scenario (injectors are
  // stateful and shared per Scenario instance — never share one across
  // concurrent tasks) and seed its own Rng.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

  // Failure-contained variant for long sweeps: a task throwing a
  // std::exception is recorded as a TaskFailure (index-ordered) and the
  // remaining tasks keep running; only non-std exceptions still propagate
  // through the pool's rethrow. Failures land in index-owned slots with a
  // serial reduction after the join, so the returned list is identical for
  // every worker count.
  std::vector<TaskFailure> run_contained(
      std::size_t count, const std::function<void(std::size_t)>& task);

 private:
  common::ThreadPool pool_;
  obs::Histogram* h_task_ = nullptr;      // batch.task_ns
  obs::Counter* c_failures_ = nullptr;    // batch.task_failures
};

// The actuation workflow: planned commands in, executed commands out.
// Injectors here realize actuator misbehaviors (logic bombs, jamming).
class ActuationWorkflow {
 public:
  explicit ActuationWorkflow(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void attach_injector(attacks::InjectorPtr injector);

  // Executed command for iteration k (u + dᵃ in the paper's model).
  Vector execute(std::size_t k, const Vector& planned);

 private:
  std::string name_;
  std::vector<attacks::InjectorPtr> injectors_;
};

}  // namespace roboads::sim
