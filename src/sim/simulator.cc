#include "sim/simulator.h"

#include <algorithm>

namespace roboads::sim {

RobotSimulator::RobotSimulator(const dyn::DynamicModel& model,
                               Matrix process_cov, Vector x0,
                               const World* world, double robot_radius)
    : model_(model),
      process_noise_(process_cov),
      initial_state_(x0),
      state_(std::move(x0)),
      world_(world),
      robot_radius_(robot_radius) {
  ROBOADS_CHECK_EQ(state_.size(), model_.state_dim(),
                   "initial state dimension mismatch");
  ROBOADS_CHECK_EQ(process_noise_.dimension(), model_.state_dim(),
                   "process covariance dimension mismatch");
  ROBOADS_CHECK(robot_radius_ >= 0.0, "robot radius must be >= 0");
}

void RobotSimulator::step(const Vector& u_executed, Rng& rng) {
  state_ = model_.step(state_, u_executed) + process_noise_.sample(rng);
  collided_ = false;
  if (world_ == nullptr) return;

  // Wall contact: the body slides along the boundary instead of leaving.
  double x = std::clamp(state_[0], robot_radius_,
                        world_->width() - robot_radius_);
  double y = std::clamp(state_[1], robot_radius_,
                        world_->height() - robot_radius_);
  // Obstacle contact: push out along the axis of least penetration.
  for (const geom::Aabb& o : world_->obstacles()) {
    const geom::Aabb box = o.inflated(robot_radius_);
    if (!box.contains({x, y})) continue;
    const double left = x - box.min.x;
    const double right = box.max.x - x;
    const double down = y - box.min.y;
    const double up = box.max.y - y;
    const double least = std::min({left, right, down, up});
    if (least == left) {
      x = box.min.x;
    } else if (least == right) {
      x = box.max.x;
    } else if (least == down) {
      y = box.min.y;
    } else {
      y = box.max.y;
    }
  }
  // Report contact only when the correction is dynamically significant —
  // a grazing slide that sheds well under a process-noise-sized fraction of
  // the motion is not a disturbance any detector could or should see.
  constexpr double kContactThreshold = 0.003;  // [m]
  const double correction = std::hypot(x - state_[0], y - state_[1]);
  if (correction > 0.0) {
    state_[0] = x;
    state_[1] = y;
    collided_ = correction > kContactThreshold;
  }
}

void RobotSimulator::reset(Vector x0) {
  ROBOADS_CHECK_EQ(x0.size(), model_.state_dim(),
                   "reset state dimension mismatch");
  state_ = std::move(x0);
}

SensingStack::SensingStack(
    std::vector<std::shared_ptr<SensingWorkflow>> workflows)
    : workflows_(std::move(workflows)) {
  ROBOADS_CHECK(!workflows_.empty(), "sensing stack needs >= 1 workflow");
  for (const auto& w : workflows_) {
    ROBOADS_CHECK(w != nullptr, "null sensing workflow");
    total_dim_ += w->dim();
  }
}

SensingWorkflow& SensingStack::workflow_named(const std::string& name) {
  for (const auto& w : workflows_) {
    if (w->name() == name) return *w;
  }
  ROBOADS_CHECK(false, "no sensing workflow named '" + name + "'");
  return *workflows_.front();  // unreachable
}

Vector SensingStack::sense_all(std::size_t k, const Vector& x_true,
                               Rng& rng) {
  Vector z;
  for (const auto& w : workflows_) {
    z = z.concat(w->sense(k, x_true, rng));
  }
  return z;
}

void SensingStack::reset() {
  for (const auto& w : workflows_) w->reset();
}

}  // namespace roboads::sim
