// Ground-truth robot simulation: advances the true state under the executed
// commands plus Gaussian process noise (the ζ of eq. 1), and gathers the
// full stacked reading vector from the sensing workflows.
#pragma once

#include <memory>
#include <vector>

#include "dynamics/model.h"
#include "random/rng.h"
#include "sim/workflow.h"

namespace roboads::sim {

class RobotSimulator {
 public:
  // `model` (and `world`, when given) must outlive the simulator. With a
  // world attached, the robot body cannot leave the arena or enter an
  // obstacle: the position is clamped to the free space and the contact is
  // reported. Wall contact is a physical actuator-level disturbance — the
  // executed motion no longer matches the commands, the same class as the
  // paper's "tire blowout" (Table I) — so the evaluation harness folds
  // `collided()` into the actuator ground truth.
  RobotSimulator(const dyn::DynamicModel& model, Matrix process_cov,
                 Vector x0, const World* world = nullptr,
                 double robot_radius = 0.05);

  const Vector& state() const { return state_; }
  // True when the last step ended in contact with a wall or obstacle.
  bool collided() const { return collided_; }

  // Advances the true state with the executed command u + dᵃ.
  void step(const Vector& u_executed, Rng& rng);

  void reset(Vector x0);

 private:
  const dyn::DynamicModel& model_;
  GaussianSampler process_noise_;
  Vector initial_state_;
  Vector state_;
  const World* world_ = nullptr;
  double robot_radius_ = 0.05;
  bool collided_ = false;
};

// The set of sensing workflows in suite order; produces the stacked reading
// vector z_k the planner (and RoboADS) receives.
class SensingStack {
 public:
  explicit SensingStack(
      std::vector<std::shared_ptr<SensingWorkflow>> workflows);

  std::size_t total_dim() const { return total_dim_; }
  const std::vector<std::shared_ptr<SensingWorkflow>>& workflows() const {
    return workflows_;
  }
  SensingWorkflow& workflow_named(const std::string& name);

  Vector sense_all(std::size_t k, const Vector& x_true, Rng& rng);
  void reset();

 private:
  std::vector<std::shared_ptr<SensingWorkflow>> workflows_;
  std::size_t total_dim_ = 0;
};

}  // namespace roboads::sim
