// LiDAR simulation and the scan-processing utility pipeline.
//
// The paper's Khepera carries a laser range finder that "scans laser beams
// in 240 degrees and receives reflection to obtain distances from
// surrounding walls" (§V-A); its sensing workflow reduces the raw scan to
// wall distances + heading (Fig. 6 plot 3). We reproduce both halves:
//
//   LidarScanner  — casts beams against the arena, adds range noise;
//   ScanProcessor — split-and-merge line extraction over the scan points,
//                   matches lines to the known arena walls using the
//                   workflow's own pose track, and emits the
//                   (d_west, d_south, d_east, θ) navigation reading the
//                   LidarNavSensor measurement model describes.
//
// Raw-scan attack injectors (DoS zeroing, sector blocking — scenarios #6,
// #7) corrupt the range array *before* processing, so the corruption
// propagates through the real reduction code exactly as a physical-channel
// attack would.
#pragma once

#include "matrix/matrix.h"
#include "random/rng.h"
#include "sim/world.h"

namespace roboads::sim {

struct LidarConfig {
  double fov = 4.0 * M_PI / 3.0;  // 240°
  std::size_t beam_count = 81;
  double max_range = 5.0;          // [m]
  double range_noise_stddev = 0.008;
};

class LidarScanner {
 public:
  explicit LidarScanner(const LidarConfig& config = {});

  const LidarConfig& config() const { return config_; }

  // Beam angle in the robot frame, evenly spaced across the FOV, front
  // centered (beam i=beam_count/2 looks along the heading).
  double beam_angle(std::size_t beam) const;

  // Ranges for every beam from `pose` = (x, y, θ), with Gaussian range
  // noise; values clip at max_range (no return).
  Vector scan(const World& world, const Vector& pose, Rng& rng) const;

 private:
  LidarConfig config_;
};

struct ScanProcessorConfig {
  double min_valid_range = 0.02;   // shorter returns are dropped as invalid
  double split_threshold = 0.025;  // max point-to-chord deviation [m]
  double jump_threshold = 0.25;    // range discontinuity starting a new chunk
  std::size_t min_points = 5;      // per extracted line
  double angle_gate = 0.4;         // wall-match heading gate [rad]
  double range_gate = 0.5;         // wall-match distance gate [m]
};

// A line extracted from the scan, in the robot frame.
struct ExtractedLine {
  double distance = 0.0;     // perpendicular distance from the robot
  double perp_angle = 0.0;   // robot-frame angle of the perpendicular foot
  std::size_t points = 0;    // supporting point count
  double rms_error = 0.0;
};

struct ProcessedScan {
  // (d_west, d_south, d_east, θ) — the LidarNavSensor reading layout.
  // All-zero when no wall could be matched (e.g. a DoS'd scan).
  Vector reading{0.0, 0.0, 0.0, 0.0};
  bool any_wall_matched = false;
  // true when west, south and east were all matched directly (no coasting).
  bool all_walls_matched = false;
  std::size_t lines_extracted = 0;
};

class ScanProcessor {
 public:
  // `obstacles` is the known arena map (the mission provides it to every
  // consumer, §V-A: "the robot receives map information"); wall matching
  // uses it to recognize obstacle faces masquerading as walls.
  ScanProcessor(const ScanProcessorConfig& config, double arena_width,
                double arena_height,
                std::vector<geom::Aabb> obstacles = {});

  // Line extraction only (exposed for tests): split-and-merge over the
  // beam-ordered scan points.
  std::vector<ExtractedLine> extract_lines(const LidarScanner& scanner,
                                           const Vector& ranges) const;

  // Full reduction. `hint_pose` = (x, y, θ) is the workflow's own pose
  // track, used to disambiguate which wall each line belongs to; distances
  // for unmatched walls coast on the hint.
  ProcessedScan process(const LidarScanner& scanner, const Vector& ranges,
                        const Vector& hint_pose) const;

  // Scan-only localization fallback: identifies an axis from a pair of
  // opposite lines whose distances sum to the arena span, and resolves the
  // rectangle's 180° rotational ambiguity with the (possibly stale) heading.
  // Returns a full (x, y, θ) pose, or nullopt when no such pair exists.
  std::optional<Vector> relocalize(const std::vector<ExtractedLine>& lines,
                                   double stale_theta) const;

 private:
  ScanProcessorConfig config_;
  double arena_width_;
  double arena_height_;
  std::vector<geom::Aabb> obstacles_;
};

}  // namespace roboads::sim
