// Transport fault injection (bus layer).
//
// The paper assumes every reading arrives on the bus each control iteration;
// real CAN-class buses drop, delay, and duplicate frames. This model sits
// between the sensing workflows and every consumer of the stacked reading
// vector (planner and detector) and applies *benign* transport faults:
//
//   * drop      — the sensor's packet for iteration k never arrives. The
//                 sensor is reported unavailable; its block of the delivered
//                 vector holds the last value that did arrive (consumers
//                 honoring the availability mask never trust it).
//   * stale     — the packet is delayed past its deadline, so the freshest
//                 frame on the bus is the *previous* iteration's reading.
//                 The sensor counts as available: the consumer cannot tell a
//                 late frame from a fresh one, which is exactly the benign
//                 misbehavior a robust detector must tolerate.
//   * duplicate — the previous frame is re-delivered after the current one;
//                 a latest-arrival consumer then reads the old payload.
//                 Observationally equal to `stale` but drawn from its own
//                 probability so the two fault classes can be swept
//                 independently.
//   * freeze    — from `freeze_at` for `freeze_duration` iterations the
//                 transport re-delivers the last pre-freeze frame (a stuck
//                 bus buffer). Packets keep arriving, so the sensor counts
//                 as available while its content is frozen.
//
// Faults compose with the adversarial `attacks::` scenarios: injectors
// corrupt readings inside the workflows, transport faults act afterwards on
// whatever the workflow emitted, so attacked and faulted traffic can be
// studied jointly (bench/fault_tolerance.cc).
//
// Determinism: each sensor draws from its own Rng stream split off
// `TransportFaultConfig::seed`, so one sensor's fault pattern never perturbs
// another's, and a sweep over drop rates replays identical missions
// otherwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "random/rng.h"
#include "sensors/sensor_model.h"

namespace roboads::sim {

// Fault rates for one sensor's transport channel.
struct SensorFaultSpec {
  std::string sensor;            // suite sensor name
  double drop_rate = 0.0;        // P(frame lost) per iteration
  double stale_rate = 0.0;       // P(frame delayed one period)
  double duplicate_rate = 0.0;   // P(previous frame re-delivered last)
  std::size_t freeze_at = 0;     // first frozen iteration; 0 = never
  std::size_t freeze_duration = 0;

  bool any_fault() const {
    return drop_rate > 0.0 || stale_rate > 0.0 || duplicate_rate > 0.0 ||
           freeze_duration > 0;
  }
};

struct TransportFaultConfig {
  std::vector<SensorFaultSpec> sensors;
  std::uint64_t seed = 0x5EED5EEDu;

  // True when any configured spec can actually fire. An inactive config
  // costs nothing: the mission runner bypasses the model entirely, keeping
  // the no-fault path bit-identical to the pre-fault-layer code.
  bool active() const;

  // Convenience: a config with a single faulted sensor.
  static TransportFaultConfig single(SensorFaultSpec spec,
                                     std::uint64_t seed = 0x5EED5EEDu);
};

// What the bus delivered for one iteration.
struct BusDelivery {
  Vector z;                      // delivered stacked readings (suite layout)
  std::vector<bool> available;   // per suite sensor: a frame arrived
  // Event counters for this delivery (forensics / bench reporting).
  std::size_t dropped = 0;
  std::size_t stale = 0;
  std::size_t duplicated = 0;
  std::size_t frozen = 0;
};

class TransportFaultModel {
 public:
  // `suite` supplies the stacked layout and must outlive the model. Specs
  // naming sensors absent from the suite throw; rates must lie in [0, 1]
  // and sum to at most 1 per sensor (the fates are mutually exclusive).
  TransportFaultModel(const sensors::SensorSuite& suite,
                      TransportFaultConfig config);

  bool active() const { return config_.active(); }

  // Applies the fault model to the true stacked readings for iteration k.
  // Iterations must be fed in order (the model keeps per-sensor history for
  // stale/duplicate/freeze delivery).
  BusDelivery deliver(std::size_t k, const Vector& z_true);

  // Clears the per-sensor history and re-seeds the fault streams, so a
  // fresh mission replays the identical fault pattern.
  void reset();

  // Cumulative event counts since construction/reset.
  std::size_t total_dropped() const { return total_dropped_; }
  std::size_t total_stale() const { return total_stale_; }
  std::size_t total_duplicated() const { return total_duplicated_; }
  std::size_t total_frozen() const { return total_frozen_; }

 private:
  struct Channel {
    SensorFaultSpec spec;     // zero rates when the sensor has no spec
    Vector last_delivered;    // most recent frame the consumer saw
    Vector prev_true;         // previous iteration's pre-fault reading
    Vector frozen_value;      // frame re-delivered during a freeze window
  };

  const sensors::SensorSuite& suite_;
  TransportFaultConfig config_;
  std::vector<Channel> channels_;   // one per suite sensor
  std::vector<Rng> streams_;        // one per suite sensor
  std::size_t total_dropped_ = 0;
  std::size_t total_stale_ = 0;
  std::size_t total_duplicated_ = 0;
  std::size_t total_frozen_ = 0;
};

}  // namespace roboads::sim
