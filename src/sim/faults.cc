#include "sim/faults.h"

namespace roboads::sim {

bool TransportFaultConfig::active() const {
  for (const SensorFaultSpec& s : sensors) {
    if (s.any_fault()) return true;
  }
  return false;
}

TransportFaultConfig TransportFaultConfig::single(SensorFaultSpec spec,
                                                  std::uint64_t seed) {
  TransportFaultConfig config;
  config.sensors.push_back(std::move(spec));
  config.seed = seed;
  return config;
}

TransportFaultModel::TransportFaultModel(const sensors::SensorSuite& suite,
                                         TransportFaultConfig config)
    : suite_(suite), config_(std::move(config)) {
  channels_.resize(suite_.count());
  for (const SensorFaultSpec& spec : config_.sensors) {
    const std::size_t i = suite_.index_of(spec.sensor);  // throws if absent
    ROBOADS_CHECK(spec.drop_rate >= 0.0 && spec.stale_rate >= 0.0 &&
                      spec.duplicate_rate >= 0.0,
                  "fault rates must be non-negative");
    ROBOADS_CHECK(
        spec.drop_rate + spec.stale_rate + spec.duplicate_rate <= 1.0,
        "per-sensor fault rates must sum to at most 1");
    ROBOADS_CHECK(spec.freeze_duration == 0 || spec.freeze_at > 0,
                  "freeze window needs freeze_at >= 1");
    channels_[i].spec = spec;
  }
  reset();
}

void TransportFaultModel::reset() {
  // One independent stream per suite sensor, split deterministically off the
  // master seed in suite order — sensor i's draws never depend on what other
  // sensors' specs consume.
  Rng master(config_.seed);
  streams_.clear();
  streams_.reserve(suite_.count());
  for (std::size_t i = 0; i < suite_.count(); ++i) {
    streams_.emplace_back(master.split());
  }
  for (Channel& ch : channels_) {
    ch.last_delivered = Vector();
    ch.prev_true = Vector();
    ch.frozen_value = Vector();
  }
  total_dropped_ = total_stale_ = total_duplicated_ = total_frozen_ = 0;
}

BusDelivery TransportFaultModel::deliver(std::size_t k, const Vector& z_true) {
  ROBOADS_CHECK_EQ(z_true.size(), suite_.total_dim(),
                   "stacked reading size mismatch");
  BusDelivery out;
  out.z = z_true;
  out.available.assign(suite_.count(), true);

  for (std::size_t i = 0; i < suite_.count(); ++i) {
    Channel& ch = channels_[i];
    const std::size_t off = suite_.offset(i);
    const std::size_t dim = suite_.sensor(i).dim();
    const Vector current = z_true.segment(off, dim);

    Vector delivered = current;
    bool arrived = true;

    if (ch.spec.any_fault()) {
      const bool in_freeze =
          ch.spec.freeze_duration > 0 && k >= ch.spec.freeze_at &&
          k < ch.spec.freeze_at + ch.spec.freeze_duration;
      if (in_freeze) {
        // Stuck transport buffer: re-deliver the last pre-freeze frame.
        if (ch.frozen_value.empty()) {
          ch.frozen_value =
              ch.last_delivered.empty() ? current : ch.last_delivered;
        }
        delivered = ch.frozen_value;
        ++out.frozen;
        ++total_frozen_;
      } else {
        // Every iteration consumes exactly one uniform draw per faulted
        // sensor, so the fault pattern at iteration k is independent of
        // which fates fired before it.
        const double u = streams_[i].uniform();
        if (u < ch.spec.drop_rate) {
          // Lost frame: nothing fresh arrives. Hold the last delivered
          // value as the placeholder payload (first-iteration drops fall
          // back to the current reading — there is nothing else to hold).
          arrived = false;
          delivered = ch.last_delivered.empty() ? current : ch.last_delivered;
          ++out.dropped;
          ++total_dropped_;
        } else if (u < ch.spec.drop_rate + ch.spec.stale_rate) {
          // Late frame: the freshest payload on the bus is last iteration's.
          delivered = ch.prev_true.empty() ? current : ch.prev_true;
          ++out.stale;
          ++total_stale_;
        } else if (u < ch.spec.drop_rate + ch.spec.stale_rate +
                           ch.spec.duplicate_rate) {
          // Re-delivered previous frame lands after the current one; a
          // latest-arrival consumer reads the old payload.
          delivered = ch.prev_true.empty() ? current : ch.prev_true;
          ++out.duplicated;
          ++total_duplicated_;
        }
      }
    }

    out.z.set_segment(off, delivered);
    out.available[i] = arrived;
    if (arrived) ch.last_delivered = delivered;
    ch.prev_true = current;
  }
  return out;
}

}  // namespace roboads::sim
