file(REMOVE_RECURSE
  "CMakeFiles/nuise_vs_ekf.dir/nuise_vs_ekf.cc.o"
  "CMakeFiles/nuise_vs_ekf.dir/nuise_vs_ekf.cc.o.d"
  "nuise_vs_ekf"
  "nuise_vs_ekf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nuise_vs_ekf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
