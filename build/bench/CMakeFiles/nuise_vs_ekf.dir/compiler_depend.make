# Empty compiler generated dependencies file for nuise_vs_ekf.
# This may be replaced when dependencies are built.
