file(REMOVE_RECURSE
  "CMakeFiles/perf_nuise.dir/perf_nuise.cc.o"
  "CMakeFiles/perf_nuise.dir/perf_nuise.cc.o.d"
  "perf_nuise"
  "perf_nuise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_nuise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
