# Empty dependencies file for perf_nuise.
# This may be replaced when dependencies are built.
