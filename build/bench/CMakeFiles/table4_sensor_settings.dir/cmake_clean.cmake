file(REMOVE_RECURSE
  "CMakeFiles/table4_sensor_settings.dir/table4_sensor_settings.cc.o"
  "CMakeFiles/table4_sensor_settings.dir/table4_sensor_settings.cc.o.d"
  "table4_sensor_settings"
  "table4_sensor_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_sensor_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
