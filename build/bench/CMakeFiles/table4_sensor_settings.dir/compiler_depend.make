# Empty compiler generated dependencies file for table4_sensor_settings.
# This may be replaced when dependencies are built.
