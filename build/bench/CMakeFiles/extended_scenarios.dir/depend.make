# Empty dependencies file for extended_scenarios.
# This may be replaced when dependencies are built.
