file(REMOVE_RECURSE
  "CMakeFiles/extended_scenarios.dir/extended_scenarios.cc.o"
  "CMakeFiles/extended_scenarios.dir/extended_scenarios.cc.o.d"
  "extended_scenarios"
  "extended_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
