file(REMOVE_RECURSE
  "CMakeFiles/recovery_response.dir/recovery_response.cc.o"
  "CMakeFiles/recovery_response.dir/recovery_response.cc.o.d"
  "recovery_response"
  "recovery_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
