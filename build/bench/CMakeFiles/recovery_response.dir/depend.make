# Empty dependencies file for recovery_response.
# This may be replaced when dependencies are built.
