# Empty dependencies file for mode_set_ablation.
# This may be replaced when dependencies are built.
