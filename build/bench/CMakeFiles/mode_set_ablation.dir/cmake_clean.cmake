file(REMOVE_RECURSE
  "CMakeFiles/mode_set_ablation.dir/mode_set_ablation.cc.o"
  "CMakeFiles/mode_set_ablation.dir/mode_set_ablation.cc.o.d"
  "mode_set_ablation"
  "mode_set_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_set_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
