# Empty compiler generated dependencies file for linear_baseline_comparison.
# This may be replaced when dependencies are built.
