file(REMOVE_RECURSE
  "CMakeFiles/linear_baseline_comparison.dir/linear_baseline_comparison.cc.o"
  "CMakeFiles/linear_baseline_comparison.dir/linear_baseline_comparison.cc.o.d"
  "linear_baseline_comparison"
  "linear_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
