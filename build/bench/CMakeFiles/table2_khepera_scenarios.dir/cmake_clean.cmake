file(REMOVE_RECURSE
  "CMakeFiles/table2_khepera_scenarios.dir/table2_khepera_scenarios.cc.o"
  "CMakeFiles/table2_khepera_scenarios.dir/table2_khepera_scenarios.cc.o.d"
  "table2_khepera_scenarios"
  "table2_khepera_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_khepera_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
