# Empty dependencies file for table2_khepera_scenarios.
# This may be replaced when dependencies are built.
