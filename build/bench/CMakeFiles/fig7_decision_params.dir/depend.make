# Empty dependencies file for fig7_decision_params.
# This may be replaced when dependencies are built.
