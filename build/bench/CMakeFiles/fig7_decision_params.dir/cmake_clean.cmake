file(REMOVE_RECURSE
  "CMakeFiles/fig7_decision_params.dir/fig7_decision_params.cc.o"
  "CMakeFiles/fig7_decision_params.dir/fig7_decision_params.cc.o.d"
  "fig7_decision_params"
  "fig7_decision_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_decision_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
