file(REMOVE_RECURSE
  "CMakeFiles/evasive_attacks.dir/evasive_attacks.cc.o"
  "CMakeFiles/evasive_attacks.dir/evasive_attacks.cc.o.d"
  "evasive_attacks"
  "evasive_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasive_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
