# Empty dependencies file for evasive_attacks.
# This may be replaced when dependencies are built.
