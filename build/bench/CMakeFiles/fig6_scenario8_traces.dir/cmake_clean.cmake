file(REMOVE_RECURSE
  "CMakeFiles/fig6_scenario8_traces.dir/fig6_scenario8_traces.cc.o"
  "CMakeFiles/fig6_scenario8_traces.dir/fig6_scenario8_traces.cc.o.d"
  "fig6_scenario8_traces"
  "fig6_scenario8_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scenario8_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
