# Empty dependencies file for fig6_scenario8_traces.
# This may be replaced when dependencies are built.
