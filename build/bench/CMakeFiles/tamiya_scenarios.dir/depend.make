# Empty dependencies file for tamiya_scenarios.
# This may be replaced when dependencies are built.
