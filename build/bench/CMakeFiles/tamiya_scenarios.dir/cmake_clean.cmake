file(REMOVE_RECURSE
  "CMakeFiles/tamiya_scenarios.dir/tamiya_scenarios.cc.o"
  "CMakeFiles/tamiya_scenarios.dir/tamiya_scenarios.cc.o.d"
  "tamiya_scenarios"
  "tamiya_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamiya_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
