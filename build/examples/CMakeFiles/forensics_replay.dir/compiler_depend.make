# Empty compiler generated dependencies file for forensics_replay.
# This may be replaced when dependencies are built.
