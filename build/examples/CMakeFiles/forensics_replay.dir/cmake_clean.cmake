file(REMOVE_RECURSE
  "CMakeFiles/forensics_replay.dir/forensics_replay.cpp.o"
  "CMakeFiles/forensics_replay.dir/forensics_replay.cpp.o.d"
  "forensics_replay"
  "forensics_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forensics_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
