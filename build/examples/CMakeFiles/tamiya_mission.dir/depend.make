# Empty dependencies file for tamiya_mission.
# This may be replaced when dependencies are built.
