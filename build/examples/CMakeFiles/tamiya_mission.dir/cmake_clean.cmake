file(REMOVE_RECURSE
  "CMakeFiles/tamiya_mission.dir/tamiya_mission.cpp.o"
  "CMakeFiles/tamiya_mission.dir/tamiya_mission.cpp.o.d"
  "tamiya_mission"
  "tamiya_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamiya_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
