# Empty compiler generated dependencies file for khepera_mission.
# This may be replaced when dependencies are built.
