file(REMOVE_RECURSE
  "CMakeFiles/khepera_mission.dir/khepera_mission.cpp.o"
  "CMakeFiles/khepera_mission.dir/khepera_mission.cpp.o.d"
  "khepera_mission"
  "khepera_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khepera_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
