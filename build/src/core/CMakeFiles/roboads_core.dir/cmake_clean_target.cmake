file(REMOVE_RECURSE
  "libroboads_core.a"
)
