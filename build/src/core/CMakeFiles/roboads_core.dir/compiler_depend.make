# Empty compiler generated dependencies file for roboads_core.
# This may be replaced when dependencies are built.
