
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decision.cc" "src/core/CMakeFiles/roboads_core.dir/decision.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/decision.cc.o.d"
  "/root/repo/src/core/ekf.cc" "src/core/CMakeFiles/roboads_core.dir/ekf.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/ekf.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/roboads_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/engine.cc.o.d"
  "/root/repo/src/core/linear_baseline.cc" "src/core/CMakeFiles/roboads_core.dir/linear_baseline.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/linear_baseline.cc.o.d"
  "/root/repo/src/core/mode.cc" "src/core/CMakeFiles/roboads_core.dir/mode.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/mode.cc.o.d"
  "/root/repo/src/core/nuise.cc" "src/core/CMakeFiles/roboads_core.dir/nuise.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/nuise.cc.o.d"
  "/root/repo/src/core/observability.cc" "src/core/CMakeFiles/roboads_core.dir/observability.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/observability.cc.o.d"
  "/root/repo/src/core/roboads.cc" "src/core/CMakeFiles/roboads_core.dir/roboads.cc.o" "gcc" "src/core/CMakeFiles/roboads_core.dir/roboads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/roboads_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/roboads_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/roboads_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/roboads_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/roboads_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
