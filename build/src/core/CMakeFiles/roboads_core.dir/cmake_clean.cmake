file(REMOVE_RECURSE
  "CMakeFiles/roboads_core.dir/decision.cc.o"
  "CMakeFiles/roboads_core.dir/decision.cc.o.d"
  "CMakeFiles/roboads_core.dir/ekf.cc.o"
  "CMakeFiles/roboads_core.dir/ekf.cc.o.d"
  "CMakeFiles/roboads_core.dir/engine.cc.o"
  "CMakeFiles/roboads_core.dir/engine.cc.o.d"
  "CMakeFiles/roboads_core.dir/linear_baseline.cc.o"
  "CMakeFiles/roboads_core.dir/linear_baseline.cc.o.d"
  "CMakeFiles/roboads_core.dir/mode.cc.o"
  "CMakeFiles/roboads_core.dir/mode.cc.o.d"
  "CMakeFiles/roboads_core.dir/nuise.cc.o"
  "CMakeFiles/roboads_core.dir/nuise.cc.o.d"
  "CMakeFiles/roboads_core.dir/observability.cc.o"
  "CMakeFiles/roboads_core.dir/observability.cc.o.d"
  "CMakeFiles/roboads_core.dir/roboads.cc.o"
  "CMakeFiles/roboads_core.dir/roboads.cc.o.d"
  "libroboads_core.a"
  "libroboads_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
