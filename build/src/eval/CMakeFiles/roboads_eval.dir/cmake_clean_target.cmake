file(REMOVE_RECURSE
  "libroboads_eval.a"
)
