file(REMOVE_RECURSE
  "CMakeFiles/roboads_eval.dir/khepera.cc.o"
  "CMakeFiles/roboads_eval.dir/khepera.cc.o.d"
  "CMakeFiles/roboads_eval.dir/mission.cc.o"
  "CMakeFiles/roboads_eval.dir/mission.cc.o.d"
  "CMakeFiles/roboads_eval.dir/platform.cc.o"
  "CMakeFiles/roboads_eval.dir/platform.cc.o.d"
  "CMakeFiles/roboads_eval.dir/recovery.cc.o"
  "CMakeFiles/roboads_eval.dir/recovery.cc.o.d"
  "CMakeFiles/roboads_eval.dir/scoring.cc.o"
  "CMakeFiles/roboads_eval.dir/scoring.cc.o.d"
  "CMakeFiles/roboads_eval.dir/tamiya.cc.o"
  "CMakeFiles/roboads_eval.dir/tamiya.cc.o.d"
  "CMakeFiles/roboads_eval.dir/trace_io.cc.o"
  "CMakeFiles/roboads_eval.dir/trace_io.cc.o.d"
  "libroboads_eval.a"
  "libroboads_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
