# Empty compiler generated dependencies file for roboads_eval.
# This may be replaced when dependencies are built.
