# Empty compiler generated dependencies file for roboads_stats.
# This may be replaced when dependencies are built.
