file(REMOVE_RECURSE
  "libroboads_stats.a"
)
