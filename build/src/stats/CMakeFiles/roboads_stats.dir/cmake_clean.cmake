file(REMOVE_RECURSE
  "CMakeFiles/roboads_stats.dir/chi_square.cc.o"
  "CMakeFiles/roboads_stats.dir/chi_square.cc.o.d"
  "CMakeFiles/roboads_stats.dir/gaussian.cc.o"
  "CMakeFiles/roboads_stats.dir/gaussian.cc.o.d"
  "CMakeFiles/roboads_stats.dir/metrics.cc.o"
  "CMakeFiles/roboads_stats.dir/metrics.cc.o.d"
  "libroboads_stats.a"
  "libroboads_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
