file(REMOVE_RECURSE
  "CMakeFiles/roboads_sensors.dir/sensor_model.cc.o"
  "CMakeFiles/roboads_sensors.dir/sensor_model.cc.o.d"
  "CMakeFiles/roboads_sensors.dir/standard_sensors.cc.o"
  "CMakeFiles/roboads_sensors.dir/standard_sensors.cc.o.d"
  "libroboads_sensors.a"
  "libroboads_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
