
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/sensor_model.cc" "src/sensors/CMakeFiles/roboads_sensors.dir/sensor_model.cc.o" "gcc" "src/sensors/CMakeFiles/roboads_sensors.dir/sensor_model.cc.o.d"
  "/root/repo/src/sensors/standard_sensors.cc" "src/sensors/CMakeFiles/roboads_sensors.dir/standard_sensors.cc.o" "gcc" "src/sensors/CMakeFiles/roboads_sensors.dir/standard_sensors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/roboads_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/roboads_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
