# Empty compiler generated dependencies file for roboads_sensors.
# This may be replaced when dependencies are built.
