file(REMOVE_RECURSE
  "libroboads_sensors.a"
)
