file(REMOVE_RECURSE
  "libroboads_dynamics.a"
)
