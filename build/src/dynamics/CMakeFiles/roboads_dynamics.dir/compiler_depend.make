# Empty compiler generated dependencies file for roboads_dynamics.
# This may be replaced when dependencies are built.
