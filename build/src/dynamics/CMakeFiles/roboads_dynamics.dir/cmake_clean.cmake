file(REMOVE_RECURSE
  "CMakeFiles/roboads_dynamics.dir/bicycle.cc.o"
  "CMakeFiles/roboads_dynamics.dir/bicycle.cc.o.d"
  "CMakeFiles/roboads_dynamics.dir/diff_drive.cc.o"
  "CMakeFiles/roboads_dynamics.dir/diff_drive.cc.o.d"
  "libroboads_dynamics.a"
  "libroboads_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
