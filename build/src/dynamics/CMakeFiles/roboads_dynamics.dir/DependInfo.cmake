
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamics/bicycle.cc" "src/dynamics/CMakeFiles/roboads_dynamics.dir/bicycle.cc.o" "gcc" "src/dynamics/CMakeFiles/roboads_dynamics.dir/bicycle.cc.o.d"
  "/root/repo/src/dynamics/diff_drive.cc" "src/dynamics/CMakeFiles/roboads_dynamics.dir/diff_drive.cc.o" "gcc" "src/dynamics/CMakeFiles/roboads_dynamics.dir/diff_drive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/roboads_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
