file(REMOVE_RECURSE
  "libroboads_planning.a"
)
