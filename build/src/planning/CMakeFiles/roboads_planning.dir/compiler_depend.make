# Empty compiler generated dependencies file for roboads_planning.
# This may be replaced when dependencies are built.
