file(REMOVE_RECURSE
  "CMakeFiles/roboads_planning.dir/rrt_star.cc.o"
  "CMakeFiles/roboads_planning.dir/rrt_star.cc.o.d"
  "CMakeFiles/roboads_planning.dir/tracker.cc.o"
  "CMakeFiles/roboads_planning.dir/tracker.cc.o.d"
  "libroboads_planning.a"
  "libroboads_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
