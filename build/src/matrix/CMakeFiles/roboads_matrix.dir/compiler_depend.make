# Empty compiler generated dependencies file for roboads_matrix.
# This may be replaced when dependencies are built.
