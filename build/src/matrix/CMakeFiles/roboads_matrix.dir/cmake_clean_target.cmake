file(REMOVE_RECURSE
  "libroboads_matrix.a"
)
