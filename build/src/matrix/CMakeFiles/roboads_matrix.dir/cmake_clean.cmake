file(REMOVE_RECURSE
  "CMakeFiles/roboads_matrix.dir/decomp.cc.o"
  "CMakeFiles/roboads_matrix.dir/decomp.cc.o.d"
  "CMakeFiles/roboads_matrix.dir/matrix.cc.o"
  "CMakeFiles/roboads_matrix.dir/matrix.cc.o.d"
  "libroboads_matrix.a"
  "libroboads_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
