file(REMOVE_RECURSE
  "libroboads_geometry.a"
)
