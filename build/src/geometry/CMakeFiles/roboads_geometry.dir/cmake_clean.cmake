file(REMOVE_RECURSE
  "CMakeFiles/roboads_geometry.dir/geometry.cc.o"
  "CMakeFiles/roboads_geometry.dir/geometry.cc.o.d"
  "libroboads_geometry.a"
  "libroboads_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
