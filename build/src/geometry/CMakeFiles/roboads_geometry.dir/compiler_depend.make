# Empty compiler generated dependencies file for roboads_geometry.
# This may be replaced when dependencies are built.
