file(REMOVE_RECURSE
  "libroboads_random.a"
)
