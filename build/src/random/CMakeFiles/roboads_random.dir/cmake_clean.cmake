file(REMOVE_RECURSE
  "CMakeFiles/roboads_random.dir/rng.cc.o"
  "CMakeFiles/roboads_random.dir/rng.cc.o.d"
  "libroboads_random.a"
  "libroboads_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
