# Empty compiler generated dependencies file for roboads_random.
# This may be replaced when dependencies are built.
