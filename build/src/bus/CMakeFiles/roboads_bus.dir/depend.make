# Empty dependencies file for roboads_bus.
# This may be replaced when dependencies are built.
