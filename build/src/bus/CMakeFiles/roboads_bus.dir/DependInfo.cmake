
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/baseline_detectors.cc" "src/bus/CMakeFiles/roboads_bus.dir/baseline_detectors.cc.o" "gcc" "src/bus/CMakeFiles/roboads_bus.dir/baseline_detectors.cc.o.d"
  "/root/repo/src/bus/packet.cc" "src/bus/CMakeFiles/roboads_bus.dir/packet.cc.o" "gcc" "src/bus/CMakeFiles/roboads_bus.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/roboads_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
