file(REMOVE_RECURSE
  "libroboads_bus.a"
)
