file(REMOVE_RECURSE
  "CMakeFiles/roboads_bus.dir/baseline_detectors.cc.o"
  "CMakeFiles/roboads_bus.dir/baseline_detectors.cc.o.d"
  "CMakeFiles/roboads_bus.dir/packet.cc.o"
  "CMakeFiles/roboads_bus.dir/packet.cc.o.d"
  "libroboads_bus.a"
  "libroboads_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
