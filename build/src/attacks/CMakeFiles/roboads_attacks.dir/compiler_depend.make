# Empty compiler generated dependencies file for roboads_attacks.
# This may be replaced when dependencies are built.
