file(REMOVE_RECURSE
  "CMakeFiles/roboads_attacks.dir/injector.cc.o"
  "CMakeFiles/roboads_attacks.dir/injector.cc.o.d"
  "CMakeFiles/roboads_attacks.dir/scenario.cc.o"
  "CMakeFiles/roboads_attacks.dir/scenario.cc.o.d"
  "libroboads_attacks.a"
  "libroboads_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
