file(REMOVE_RECURSE
  "libroboads_attacks.a"
)
