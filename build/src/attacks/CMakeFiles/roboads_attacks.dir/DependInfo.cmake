
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/injector.cc" "src/attacks/CMakeFiles/roboads_attacks.dir/injector.cc.o" "gcc" "src/attacks/CMakeFiles/roboads_attacks.dir/injector.cc.o.d"
  "/root/repo/src/attacks/scenario.cc" "src/attacks/CMakeFiles/roboads_attacks.dir/scenario.cc.o" "gcc" "src/attacks/CMakeFiles/roboads_attacks.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/roboads_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/roboads_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/roboads_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
