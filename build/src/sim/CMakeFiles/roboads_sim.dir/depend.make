# Empty dependencies file for roboads_sim.
# This may be replaced when dependencies are built.
