file(REMOVE_RECURSE
  "libroboads_sim.a"
)
