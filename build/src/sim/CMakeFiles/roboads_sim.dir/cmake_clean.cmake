file(REMOVE_RECURSE
  "CMakeFiles/roboads_sim.dir/lidar.cc.o"
  "CMakeFiles/roboads_sim.dir/lidar.cc.o.d"
  "CMakeFiles/roboads_sim.dir/simulator.cc.o"
  "CMakeFiles/roboads_sim.dir/simulator.cc.o.d"
  "CMakeFiles/roboads_sim.dir/workflow.cc.o"
  "CMakeFiles/roboads_sim.dir/workflow.cc.o.d"
  "CMakeFiles/roboads_sim.dir/world.cc.o"
  "CMakeFiles/roboads_sim.dir/world.cc.o.d"
  "libroboads_sim.a"
  "libroboads_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
