# Empty compiler generated dependencies file for nuise_property_test.
# This may be replaced when dependencies are built.
