file(REMOVE_RECURSE
  "CMakeFiles/nuise_property_test.dir/nuise_property_test.cc.o"
  "CMakeFiles/nuise_property_test.dir/nuise_property_test.cc.o.d"
  "nuise_property_test"
  "nuise_property_test.pdb"
  "nuise_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nuise_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
