file(REMOVE_RECURSE
  "CMakeFiles/lidar_matching_test.dir/lidar_matching_test.cc.o"
  "CMakeFiles/lidar_matching_test.dir/lidar_matching_test.cc.o.d"
  "lidar_matching_test"
  "lidar_matching_test.pdb"
  "lidar_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidar_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
