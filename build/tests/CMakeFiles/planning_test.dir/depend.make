# Empty dependencies file for planning_test.
# This may be replaced when dependencies are built.
