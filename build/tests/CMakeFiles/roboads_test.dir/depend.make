# Empty dependencies file for roboads_test.
# This may be replaced when dependencies are built.
