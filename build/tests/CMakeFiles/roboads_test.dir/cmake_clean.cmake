file(REMOVE_RECURSE
  "CMakeFiles/roboads_test.dir/roboads_test.cc.o"
  "CMakeFiles/roboads_test.dir/roboads_test.cc.o.d"
  "roboads_test"
  "roboads_test.pdb"
  "roboads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roboads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
