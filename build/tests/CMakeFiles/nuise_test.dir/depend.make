# Empty dependencies file for nuise_test.
# This may be replaced when dependencies are built.
