file(REMOVE_RECURSE
  "CMakeFiles/nuise_test.dir/nuise_test.cc.o"
  "CMakeFiles/nuise_test.dir/nuise_test.cc.o.d"
  "nuise_test"
  "nuise_test.pdb"
  "nuise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nuise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
