# Empty compiler generated dependencies file for nuise_test.
# This may be replaced when dependencies are built.
