# Empty dependencies file for ekf_test.
# This may be replaced when dependencies are built.
