# Empty dependencies file for baseline_and_recovery_test.
# This may be replaced when dependencies are built.
