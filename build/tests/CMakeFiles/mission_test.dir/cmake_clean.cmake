file(REMOVE_RECURSE
  "CMakeFiles/mission_test.dir/mission_test.cc.o"
  "CMakeFiles/mission_test.dir/mission_test.cc.o.d"
  "mission_test"
  "mission_test.pdb"
  "mission_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
