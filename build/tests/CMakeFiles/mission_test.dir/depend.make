# Empty dependencies file for mission_test.
# This may be replaced when dependencies are built.
