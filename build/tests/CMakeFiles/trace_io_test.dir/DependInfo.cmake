
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_io_test.cc" "tests/CMakeFiles/trace_io_test.dir/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/trace_io_test.dir/trace_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/roboads_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/roboads_core.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/roboads_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/roboads_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamics/CMakeFiles/roboads_dynamics.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/roboads_random.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/roboads_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/roboads_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/roboads_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/roboads_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/roboads_matrix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
