# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/decomp_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/dynamics_test[1]_include.cmake")
include("/root/repo/build/tests/sensors_test[1]_include.cmake")
include("/root/repo/build/tests/nuise_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/decision_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/lidar_test[1]_include.cmake")
include("/root/repo/build/tests/planning_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/mission_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/observability_test[1]_include.cmake")
include("/root/repo/build/tests/ekf_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_and_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/scoring_test[1]_include.cmake")
include("/root/repo/build/tests/roboads_test[1]_include.cmake")
include("/root/repo/build/tests/workflow_test[1]_include.cmake")
include("/root/repo/build/tests/lidar_matching_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/nuise_property_test[1]_include.cmake")
