// Coverage fuzzer CLI (docs/SCENARIOS.md; ./ci.sh fuzz-smoke).
//
// Randomizes attack campaigns over the scenario DSL, flies each one as a
// contained mission, checks the fuzzer invariants (scenario/fuzz.h), and
// shrinks any violation to a minimal replayable spec. Exit status: 0 when
// every campaign held the invariants, 1 when there are findings, 2 on
// usage errors.
//
//   roboads_fuzz [--seed=N] [--campaigns=N] [--iterations=N]
//                [--max-attacks=N] [--platform=NAME] [--threads=N]
//                [--corpus-out=DIR]
//
// --platform may repeat; default is every known platform. --corpus-out
// writes each finding's shrunk spec as DIR/<invariant>-<index>.spec, ready
// to check into tests/data/fuzz_corpus/ once the underlying bug is fixed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/fuzz.h"
#include "scenario/spec.h"

namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--campaigns=N] [--iterations=N] "
               "[--max-attacks=N] [--platform=NAME]... [--threads=N] "
               "[--corpus-out=DIR]\n",
               argv0);
  std::exit(2);
}

std::size_t parse_count(const char* argv0, const char* flag,
                        const char* value, bool allow_zero) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (*value == '\0' || end == value || *end != '\0') {
    usage_error(argv0, std::string(flag) + " expects a non-negative "
                                           "integer, got \"" +
                           value + "\"");
  }
  if (!allow_zero && parsed == 0) {
    usage_error(argv0, std::string(flag) + " must be positive");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using roboads::scenario::FuzzConfig;
  using roboads::scenario::FuzzFinding;
  using roboads::scenario::FuzzReport;

  FuzzConfig config;
  config.platforms.clear();
  std::string corpus_out;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = parse_count(argv[0], "--seed", arg + 7, true);
    } else if (std::strncmp(arg, "--campaigns=", 12) == 0) {
      config.campaigns = parse_count(argv[0], "--campaigns", arg + 12, false);
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      config.iterations =
          parse_count(argv[0], "--iterations", arg + 13, false);
    } else if (std::strncmp(arg, "--max-attacks=", 14) == 0) {
      config.max_attacks =
          parse_count(argv[0], "--max-attacks", arg + 14, false);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.num_threads = parse_count(argv[0], "--threads", arg + 10, true);
    } else if (std::strncmp(arg, "--platform=", 11) == 0) {
      config.platforms.emplace_back(arg + 11);
    } else if (std::strncmp(arg, "--corpus-out=", 13) == 0) {
      corpus_out = arg + 13;
      if (corpus_out.empty()) {
        usage_error(argv[0], "--corpus-out expects a directory");
      }
    } else {
      usage_error(argv[0], std::string("unknown argument \"") + arg + "\"");
    }
  }
  if (config.platforms.empty()) {
    config.platforms = roboads::scenario::platform_names();
  }
  for (const std::string& platform : config.platforms) {
    roboads::scenario::platform_traits(platform);  // throws on a bad name
  }

  std::printf("fuzzing %zu campaigns (seed %llu, %zu iterations, up to %zu "
              "attacks) over:",
              config.campaigns,
              static_cast<unsigned long long>(config.seed),
              config.iterations, config.max_attacks);
  for (const std::string& platform : config.platforms) {
    std::printf(" %s", platform.c_str());
  }
  std::printf("\n");

  const FuzzReport report = roboads::scenario::run_fuzzer(config);
  std::printf("%zu campaigns flown, %zu findings, %zu shrink missions\n",
              report.campaigns_run, report.findings.size(),
              report.shrink_missions);

  for (const FuzzFinding& finding : report.findings) {
    std::printf("\n== finding: %s (campaign %zu)\n  %s\n",
                finding.violation.invariant.c_str(), finding.campaign_index,
                finding.violation.detail.c_str());
    std::printf("-- shrunk reproducer:\n%s",
                roboads::scenario::serialize(finding.shrunk).c_str());
    if (!corpus_out.empty()) {
      const std::string path = corpus_out + "/" +
                               finding.violation.invariant + "-" +
                               std::to_string(finding.campaign_index) +
                               ".spec";
      std::ofstream os(path);
      if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
      os << roboads::scenario::serialize(finding.shrunk);
      std::printf("-- written to %s\n", path.c_str());
    }
  }
  return report.clean() ? 0 : 1;
}
