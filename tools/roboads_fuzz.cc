// Coverage fuzzer CLI (docs/SCENARIOS.md; ./ci.sh fuzz-smoke).
//
// Randomizes attack campaigns over the scenario DSL, flies each one as a
// contained mission, checks the fuzzer invariants (scenario/fuzz.h), and
// shrinks any violation to a minimal replayable spec. Exit status: 0 when
// every campaign held the invariants, 1 when there are findings, 2 on
// usage errors.
//
//   roboads_fuzz [--seed=N] [--campaigns=N] [--iterations=N]
//                [--max-attacks=N] [--fault-probability=P] [--platform=NAME]
//                [--threads=N] [--corpus-out=DIR]
//                [--workers=N --shard-dir=DIR [--resume]]
//
// --platform may repeat; default is every known platform. --corpus-out
// writes each finding's shrunk spec as DIR/<invariant>-<index>.spec, ready
// to check into tests/data/fuzz_corpus/ once the underlying bug is fixed.
//
// --workers=N runs the sweep as a crash-resilient sharded campaign instead
// of in-process threads: N supervised worker processes (re-execs of this
// binary) fly the identical campaign set, checkpointing per-campaign results
// under --shard-dir so a killed sweep resumes with --resume. Campaign
// regeneration is seed-deterministic, so sharded and serial sweeps produce
// the same findings.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/fuzz.h"
#include "scenario/spec.h"
#include "shard/checkpoint.h"
#include "shard/manifest.h"
#include "shard/merge.h"
#include "shard/supervise.h"
#include "shard/worker.h"

namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  std::fprintf(stderr,
               "usage: %s [--seed=N] [--campaigns=N] [--iterations=N] "
               "[--max-attacks=N] [--fault-probability=P] "
               "[--platform=NAME]... [--threads=N] [--corpus-out=DIR] "
               "[--workers=N --shard-dir=DIR [--resume]]\n",
               argv0);
  std::exit(2);
}

std::size_t parse_count(const char* argv0, const char* flag,
                        const char* value, bool allow_zero) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (*value == '\0' || end == value || *end != '\0') {
    usage_error(argv0, std::string(flag) + " expects a non-negative "
                                           "integer, got \"" +
                           value + "\"");
  }
  if (!allow_zero && parsed == 0) {
    usage_error(argv0, std::string(flag) + " must be positive");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  using roboads::scenario::FuzzConfig;
  using roboads::scenario::FuzzFinding;
  using roboads::scenario::FuzzReport;

  // Supervisor-spawned worker processes re-exec this binary.
  if (argc >= 2 && std::strcmp(argv[1], "--shard-worker") == 0) {
    return roboads::shard::worker_main({argv + 2, argv + argc});
  }

  FuzzConfig config;
  config.platforms.clear();
  std::string corpus_out;
  std::size_t workers = 0;
  std::string shard_dir;
  bool resume = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = parse_count(argv[0], "--seed", arg + 7, true);
    } else if (std::strncmp(arg, "--campaigns=", 12) == 0) {
      config.campaigns = parse_count(argv[0], "--campaigns", arg + 12, false);
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      config.iterations =
          parse_count(argv[0], "--iterations", arg + 13, false);
    } else if (std::strncmp(arg, "--max-attacks=", 14) == 0) {
      config.max_attacks =
          parse_count(argv[0], "--max-attacks", arg + 14, false);
    } else if (std::strncmp(arg, "--fault-probability=", 20) == 0) {
      char* end = nullptr;
      config.fault_probability = std::strtod(arg + 20, &end);
      if (end == arg + 20 || *end != '\0' || config.fault_probability < 0.0 ||
          config.fault_probability > 1.0) {
        usage_error(argv[0], "--fault-probability expects a value in [0,1]");
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      config.num_threads = parse_count(argv[0], "--threads", arg + 10, true);
    } else if (std::strncmp(arg, "--platform=", 11) == 0) {
      config.platforms.emplace_back(arg + 11);
    } else if (std::strncmp(arg, "--corpus-out=", 13) == 0) {
      corpus_out = arg + 13;
      if (corpus_out.empty()) {
        usage_error(argv[0], "--corpus-out expects a directory");
      }
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      workers = parse_count(argv[0], "--workers", arg + 10, false);
    } else if (std::strncmp(arg, "--shard-dir=", 12) == 0) {
      shard_dir = arg + 12;
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else {
      usage_error(argv[0], std::string("unknown argument \"") + arg + "\"");
    }
  }
  if (config.platforms.empty()) {
    config.platforms = roboads::scenario::platform_names();
  }
  for (const std::string& platform : config.platforms) {
    roboads::scenario::platform_traits(platform);  // throws on a bad name
  }
  if (workers > 0 && shard_dir.empty()) {
    usage_error(argv[0], "--workers needs --shard-dir");
  }
  if ((resume || !shard_dir.empty()) && workers == 0) {
    usage_error(argv[0], "--shard-dir/--resume need --workers");
  }

  if (workers > 0) {
    namespace shard = roboads::shard;
    namespace fs = std::filesystem;
    try {
      fs::create_directories(shard_dir);
      const std::string manifest_path = shard_dir + "/manifest.jsonl";
      if (resume && fs::exists(manifest_path)) {
        // The stored manifest is the campaign being resumed; the sweep flags
        // of the original invocation win over whatever was passed now.
        std::printf("resuming sharded sweep from %s\n", shard_dir.c_str());
      } else {
        shard::write_manifest_file(manifest_path,
                                   shard::fuzz_manifest(config, workers));
      }
      const shard::Manifest manifest =
          shard::read_manifest_file(manifest_path);

      shard::SupervisorConfig supervisor;
      const shard::SuperviseResult supervised = shard::supervise(
          manifest, shard_dir, supervisor,
          shard::self_exec_launcher(manifest_path, shard_dir,
                                    /*record_bundles=*/false));
      const shard::MergedReport report =
          shard::merge_run(manifest, shard_dir);
      std::ofstream os(shard_dir + "/report.jsonl", std::ios::binary);
      os << report.text;

      std::printf("%zu/%zu campaigns flown over %zu workers "
                  "(%zu launches, %zu crashes, %zu hangs)\n",
                  report.stats.completed, report.stats.total_jobs,
                  manifest.shards, supervised.launches, supervised.crashes,
                  supervised.hangs);
      std::size_t findings = 0;
      for (const shard::JobOutcome& outcome :
           shard::load_run_outcomes(shard_dir)) {
        for (const shard::OutcomeFinding& finding : outcome.findings) {
          std::printf("\n== finding: %s (%s)\n  %s\n",
                      finding.invariant.c_str(), outcome.id.c_str(),
                      finding.detail.c_str());
          std::printf("-- shrunk reproducer:\n%s", finding.shrunk_text.c_str());
          if (!corpus_out.empty()) {
            const std::string path = corpus_out + "/" + finding.invariant +
                                     "-" + outcome.id + ".spec";
            std::ofstream spec_os(path);
            if (!spec_os) {
              std::fprintf(stderr, "cannot write %s\n", path.c_str());
              return 2;
            }
            spec_os << finding.shrunk_text;
            std::printf("-- written to %s\n", path.c_str());
          }
          ++findings;
        }
      }
      std::printf("%zu findings\n", findings);
      if (!report.stats.complete) {
        std::fprintf(stderr, "partial coverage: %zu campaigns missing\n",
                     report.stats.missing_ids.size());
        return 3;
      }
      return findings == 0 && report.stats.failed == 0 ? 0 : 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }

  std::printf("fuzzing %zu campaigns (seed %llu, %zu iterations, up to %zu "
              "attacks) over:",
              config.campaigns,
              static_cast<unsigned long long>(config.seed),
              config.iterations, config.max_attacks);
  for (const std::string& platform : config.platforms) {
    std::printf(" %s", platform.c_str());
  }
  std::printf("\n");

  const FuzzReport report = roboads::scenario::run_fuzzer(config);
  std::printf("%zu campaigns flown, %zu findings, %zu shrink missions\n",
              report.campaigns_run, report.findings.size(),
              report.shrink_missions);

  for (const FuzzFinding& finding : report.findings) {
    std::printf("\n== finding: %s (campaign %zu)\n  %s\n",
                finding.violation.invariant.c_str(), finding.campaign_index,
                finding.violation.detail.c_str());
    std::printf("-- shrunk reproducer:\n%s",
                roboads::scenario::serialize(finding.shrunk).c_str());
    if (!corpus_out.empty()) {
      const std::string path = corpus_out + "/" +
                               finding.violation.invariant + "-" +
                               std::to_string(finding.campaign_index) +
                               ".spec";
      std::ofstream os(path);
      if (!os) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 2;
      }
      os << roboads::scenario::serialize(finding.shrunk);
      std::printf("-- written to %s\n", path.c_str());
    }
  }
  return report.clean() ? 0 : 1;
}
