// Renders a saved metrics JSONL file (the --metrics-out format written by
// obs::MetricsRegistry::write_jsonl) as the human-readable table that
// obs::render_report produces for a live registry — so a CI artifact or a
// colleague's run can be read without re-running anything.
//
//   roboads_report <metrics.jsonl>
//
// Exit status: 0 on success; 2 when the file is missing, empty, truncated
// mid-write, or not a metrics JSONL — each with a message naming the file
// and what is wrong with it, because a silent empty report in CI reads as
// "all green" when the run actually never produced metrics.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  if (argc != 2 || argv[1][0] == '\0' ||
      std::string(argv[1]) == "--help") {
    std::fprintf(stderr, "usage: roboads_report <metrics.jsonl>\n");
    return 2;
  }
  try {
    const std::vector<roboads::obs::MetricSample> samples =
        roboads::obs::load_metrics_jsonl(argv[1]);
    std::fputs(roboads::obs::render_report(samples).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "roboads_report: %s\n", e.what());
    return 2;
  }
}
