// Renders a saved offline observability file as a human-readable table:
// either a metrics JSONL dump (the --metrics-out format written by
// obs::MetricsRegistry::write_jsonl, including the fleet service's
// "fleet.*" registry) or a histogram-snapshot JSONL (the roboads_fleet
// --hist-out format of named obs::write_histogram lines, rendered with
// mean/p50/p99/ci95). The format is sniffed from the first line — so a CI
// artifact or a colleague's run can be read without re-running anything.
//
//   roboads_report <metrics.jsonl | histograms.jsonl>
//
// Exit status: 0 on success; 2 when the file is missing, empty, truncated
// mid-write, or not a recognized JSONL — each with a message naming the
// file and what is wrong with it, because a silent empty report in CI
// reads as "all green" when the run actually never produced metrics.
#include <cstdio>
#include <string>

#include "obs/report.h"

int main(int argc, char** argv) {
  if (argc != 2 || argv[1][0] == '\0' ||
      std::string(argv[1]) == "--help") {
    std::fprintf(stderr,
                 "usage: roboads_report <metrics.jsonl | histograms.jsonl>\n");
    return 2;
  }
  try {
    std::fputs(roboads::obs::render_report_file(argv[1]).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "roboads_report: %s\n", e.what());
    return 2;
  }
}
