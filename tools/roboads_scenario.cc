// Scenario spec tool (docs/SCENARIOS.md): parse, validate, normalize and
// fly .spec files — the corpus-promotion workflow's command line.
//
//   roboads_scenario check FILE...   parse + semantic validation; exit 1 on
//                                    the first invalid spec
//   roboads_scenario print FILE      parse and reprint the canonical form
//   roboads_scenario run FILE...     compile and fly each spec, print the
//                                    per-mission detection summary
//   roboads_scenario library         print every built-in library spec name
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/compile.h"
#include "scenario/library.h"
#include "scenario/spec.h"

namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
  std::fprintf(stderr,
               "usage: %s check FILE... | print FILE | run FILE... | "
               "library\n",
               argv0);
  std::exit(2);
}

std::string read_file(const char* argv0, const std::string& path) {
  std::ifstream is(path);
  if (!is) usage_error(argv0, "cannot read \"" + path + "\"");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  namespace scenario = roboads::scenario;
  if (argc < 2) usage_error(argv[0], "missing subcommand");
  const std::string command = argv[1];

  if (command == "library") {
    if (argc != 2) usage_error(argv[0], "library takes no arguments");
    for (const scenario::ScenarioSpec& spec : scenario::all_library_specs()) {
      std::printf("%-9s %s\n", spec.platform.c_str(), spec.name.c_str());
    }
    return 0;
  }

  if (argc < 3) usage_error(argv[0], command + " expects at least one FILE");

  if (command == "check") {
    for (int i = 2; i < argc; ++i) {
      try {
        scenario::validate_spec(
            scenario::parse(read_file(argv[0], argv[i])));
        std::printf("%s: ok\n", argv[i]);
      } catch (const scenario::SpecError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
        return 1;
      }
    }
    return 0;
  }

  if (command == "print") {
    if (argc != 3) usage_error(argv[0], "print expects exactly one FILE");
    try {
      std::fputs(scenario::serialize(
                     scenario::parse(read_file(argv[0], argv[2])))
                     .c_str(),
                 stdout);
    } catch (const scenario::SpecError& e) {
      std::fprintf(stderr, "%s: %s\n", argv[2], e.what());
      return 1;
    }
    return 0;
  }

  if (command == "run") {
    for (int i = 2; i < argc; ++i) {
      try {
        const scenario::ScenarioSpec spec =
            scenario::parse(read_file(argv[0], argv[i]));
        const scenario::SpecRun run = scenario::run_spec(spec);
        std::printf(
            "%s: \"%s\" on %s — sensor %s (%s), actuator %s (%s), goal %s\n",
            argv[i], spec.name.c_str(), spec.platform.c_str(),
            scenario::sensor_detected(run.score) ? "detected" : "silent",
            run.score.sensor_condition_sequence.c_str(),
            scenario::actuator_detected(run.score) ? "detected" : "silent",
            run.score.actuator_condition_sequence.c_str(),
            run.result.goal_reached ? "reached" : "not reached");
      } catch (const scenario::SpecError& e) {
        std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
        return 1;
      }
    }
    return 0;
  }

  usage_error(argv[0], "unknown subcommand \"" + command + "\"");
}
