// roboads_fleet — drive the fleet-scale detection service from recorded
// missions, and watch a live fleet (docs/FLEET.md, docs/OBSERVABILITY.md).
//
//   roboads_fleet --robots=32 --scenario=8 --iterations=120 --parity
//   roboads_fleet --robots=64 --hz=20 --trace-sample=8
//                 --trace-out=spans.jsonl --status-out=fleet_status.json
//   roboads_fleet top --status=fleet_status.json
//
// Run mode records a handful of distinct missions (cycling seeds), replays
// them as interleaved packet streams through a live FleetService
// (concurrent producers + pump thread), and reports fleet totals. With
// --parity every robot's streamed DetectionReports are compared bit-exactly
// against its source mission — the guarantee ./ci.sh fleet-smoke enforces,
// and it must hold with every introspection knob on (./ci.sh
// fleet-watch-smoke pins that). `top` renders a published fleet_status.json
// as a live terminal frame; `top --once --json` re-emits the snapshot line
// byte-identically for CI.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eval/khepera.h"
#include "eval/mission.h"
#include "fleet/cli.h"
#include "fleet/introspect.h"
#include "fleet/replay.h"
#include "fleet/service.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

using namespace roboads;

int usage(std::ostream& os, int rc) {
  os << "usage: roboads_fleet [--robots=N] [--shards=N] [--iterations=N]\n"
        "                     [--scenario=N] [--seed=N] [--missions=N]\n"
        "                     [--hz=R] [--parity] [--json]\n"
        "                     [--trace-sample=N] [--trace-out=FILE]\n"
        "                     [--status-out=FILE] [--status-interval=S]\n"
        "                     [--hist-out=FILE]\n"
        "       roboads_fleet top --status=FILE [--once] [--json]\n"
        "                     [--interval=S]\n"
        "  --robots     fleet size (default 32)\n"
        "  --shards     detection shards; 0 = hardware concurrency\n"
        "  --iterations mission length per robot (default 120)\n"
        "  --scenario   Table II scenario number; 0 = attack-free\n"
        "  --seed       base mission seed (robot r uses seed + r % missions)\n"
        "  --missions   distinct recorded missions cycled over the fleet\n"
        "  --hz         pace producers at R iterations/s per robot; 0 = "
        "firehose\n"
        "  --parity     verify every robot's streamed reports bit-exactly\n"
        "               against its source mission (exit 1 on mismatch)\n"
        "  --json       machine-readable fleet summary on stdout\n"
        "  --trace-sample=N  emit causal spans for every Nth robot\n"
        "  --trace-out  span JSONL path (requires --trace-sample)\n"
        "  --status-out fleet_status.json path, published atomically on\n"
        "               --status-interval seconds (and once at exit)\n"
        "  --hist-out   per-shard + fleet latency histograms as JSONL for\n"
        "               roboads_report\n"
        "  top          render a published fleet_status.json; --once exits\n"
        "               after one frame, --json (with --once) re-emits the\n"
        "               snapshot line byte-identically\n";
  return rc;
}

int run(const fleet::FleetRunOptions& o) {
  eval::KheperaPlatform platform;
  const auto spec = fleet::make_session_spec(platform);
  const attacks::Scenario scenario = o.scenario == 0
                                         ? platform.clean_scenario()
                                         : platform.table2_scenario(o.scenario);

  // Record the mission streams once; robots cycle over them.
  std::vector<eval::MissionResult> missions;
  for (std::size_t m = 0; m < std::min(o.missions, o.robots); ++m) {
    eval::MissionConfig cfg;
    cfg.iterations = o.iterations;
    cfg.seed = o.seed + m;
    missions.push_back(eval::run_mission(platform, scenario, cfg));
  }

  obs::TraceSink spans;
  fleet::FleetConfig config;
  config.shards = o.shards;
  config.introspect.trace_sample = o.trace_sample;
  if (o.trace_sample > 0) config.introspect.span_sink = &spans;
  config.introspect.status_path = o.status_out;
  config.introspect.status_interval_s = o.status_interval_s;
  // Per-robot collected reports for parity (robot-disjoint writes; see
  // FleetConfig::on_report).
  std::vector<std::vector<core::DetectionReport>> streamed(o.robots);
  if (o.parity) {
    // Drop-oldest backpressure is correct service behavior but incompatible
    // with a bit-parity check: a shed packet is a masked step. Size each
    // shard's ring to hold its robots' entire streams so a slow pump (e.g.
    // a one-core box) backs the producers onto the queue instead of
    // shedding.
    const std::size_t shards =
        common::ThreadPool::resolve_thread_count(o.shards);
    const std::size_t per_shard = (o.robots + shards - 1) / shards;
    config.queue_capacity =
        per_shard * o.iterations * (platform.suite().count() + 1);
    config.on_report = [&streamed](std::uint64_t robot,
                                   const core::DetectionReport& report,
                                   std::uint64_t) {
      streamed[robot].push_back(report);
    };
  }
  fleet::FleetService service(config);
  for (std::size_t r = 0; r < o.robots; ++r) service.add_robot(spec);
  service.start();

  // Concurrent producers, one per hardware-ish slice of the fleet, each
  // interleaving its robots' packets iteration by iteration. With --hz the
  // producers tick-pace each iteration wave, which keeps the rings shallow
  // and makes the EWMA rates in fleet_status.json meaningful.
  const std::size_t producers =
      std::max<std::size_t>(1, std::min<std::size_t>(4, o.robots));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      std::size_t max_iters = 0;
      for (const eval::MissionResult& m : missions) {
        max_iters = std::max(max_iters, m.records.size());
      }
      const auto start = std::chrono::steady_clock::now();
      std::vector<fleet::FleetPacket> batch;
      for (std::size_t i = 0; i < max_iters; ++i) {
        if (o.hz > 0.0) {
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(i / o.hz)));
        }
        for (std::size_t r = t; r < o.robots; r += producers) {
          const eval::MissionResult& m = missions[r % missions.size()];
          if (i >= m.records.size()) continue;
          batch.clear();
          fleet::append_iteration_packets(batch, r, platform.suite(),
                                          m.records[i]);
          for (fleet::FleetPacket& p : batch) service.submit(std::move(p));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();
  service.stop();
  service.flush_sessions();

  const fleet::FleetStatus status = service.status();
  // The final published snapshot reflects every step, including the
  // end-of-stream flush above.
  service.publish_status_now();

  if (!o.trace_out.empty()) {
    std::ofstream os(o.trace_out, std::ios::trunc);
    if (!os) {
      std::cerr << "roboads_fleet: cannot write " << o.trace_out << "\n";
      return 2;
    }
    spans.write_jsonl(os);
  }
  if (!o.hist_out.empty()) {
    std::ofstream os(o.hist_out, std::ios::trunc);
    if (!os) {
      std::cerr << "roboads_fleet: cannot write " << o.hist_out << "\n";
      return 2;
    }
    for (const fleet::ShardStatus& s : status.shards) {
      obs::write_named_histogram(
          os, "fleet.shard" + std::to_string(s.shard) + ".ingest_to_step_ns",
          s.ingest_to_step_ns);
      os << '\n';
    }
    obs::write_named_histogram(os, "fleet.ingest_to_step_ns",
                               status.ingest_to_step_ns);
    os << '\n';
    obs::write_named_histogram(os, "fleet.ingest_to_alarm_ns",
                               status.ingest_to_alarm_ns);
    os << '\n';
  }

  std::size_t parity_failures = 0;
  if (o.parity) {
    for (std::size_t r = 0; r < o.robots; ++r) {
      const eval::MissionResult& m = missions[r % missions.size()];
      if (streamed[r].size() != m.records.size()) {
        std::cerr << "parity: robot " << r << " stepped " << streamed[r].size()
                  << " iterations, mission has " << m.records.size() << "\n";
        ++parity_failures;
        continue;
      }
      for (std::size_t i = 0; i < streamed[r].size(); ++i) {
        const std::string diff =
            fleet::compare_reports(m.records[i].report, streamed[r][i]);
        if (!diff.empty()) {
          std::cerr << "parity: robot " << r << " iteration "
                    << m.records[i].k << ": " << diff << "\n";
          ++parity_failures;
          break;
        }
      }
    }
  }

  if (o.json) {
    std::cout << "{\"robots\":" << o.robots << ",\"shards\":"
              << service.shard_count() << ",\"steps\":" << status.steps
              << ",\"sensor_alarms\":" << status.sensor_alarms
              << ",\"actuator_alarms\":" << status.actuator_alarms
              << ",\"quarantine_iterations\":" << status.quarantine_iterations
              << ",\"dropped_packets\":" << status.dropped_packets
              << ",\"forwarded_packets\":" << status.forwarded_packets
              << ",\"p50_ingest_to_step_ns\":"
              << status.ingest_to_step_ns.quantile(0.50)
              << ",\"p99_ingest_to_step_ns\":"
              << status.ingest_to_step_ns.quantile(0.99)
              << ",\"trace_sample\":" << o.trace_sample
              << ",\"spans\":" << spans.size()
              << ",\"parity\":" << (o.parity ? "true" : "false")
              << ",\"parity_failures\":" << parity_failures << "}\n";
  } else {
    std::cout << "fleet     " << o.robots << " robots on "
              << service.shard_count() << " shards\n"
              << "steps     " << status.steps << " (sensor alarms "
              << status.sensor_alarms << ", actuator alarms "
              << status.actuator_alarms << ")\n"
              << "transport dropped " << status.dropped_packets
              << ", forwarded " << status.forwarded_packets << "\n"
              << "latency   ingest->step p50<="
              << status.ingest_to_step_ns.quantile(0.50) << "ns p99<="
              << status.ingest_to_step_ns.quantile(0.99) << "ns\n";
    if (o.trace_sample > 0) {
      std::cout << "spans     " << spans.size() << " (sampling 1/"
                << o.trace_sample << " robots)\n";
    }
    if (o.parity) {
      std::cout << "parity    "
                << (parity_failures == 0 ? "bit-identical to serial missions"
                                         : "FAILED")
                << "\n";
    }
  }
  return parity_failures == 0 ? 0 : 1;
}

int top(const fleet::FleetTopOptions& o) {
  for (;;) {
    const fleet::FleetStatusSnapshot status =
        fleet::read_fleet_status_file(o.status_path);
    if (o.json) {
      // serialize(parse(line)) — byte-identical to the published line.
      std::cout << fleet::serialize_fleet_status(status) << "\n";
    } else {
      if (!o.once) std::cout << "\033[H\033[2J";
      std::cout << fleet::render_fleet_status(status) << std::flush;
    }
    if (o.once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(o.interval_s));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
  }
  try {
    if (!args.empty() && args.front() == "top") {
      fleet::FleetTopOptions o;
      const std::string error = fleet::parse_fleet_top_args(
          std::vector<std::string>(args.begin() + 1, args.end()), o);
      if (!error.empty()) {
        std::cerr << "roboads_fleet top: " << error << "\n";
        return 2;
      }
      return top(o);
    }
    fleet::FleetRunOptions o;
    const std::string error = fleet::parse_fleet_run_args(args, o);
    if (!error.empty()) {
      std::cerr << "roboads_fleet: " << error << "\n";
      return usage(std::cerr, 2);
    }
    return run(o);
  } catch (const std::exception& e) {
    std::cerr << "roboads_fleet: " << e.what() << "\n";
    return 2;
  }
}
