// roboads_fleet — drive the fleet-scale detection service from recorded
// missions (docs/FLEET.md).
//
//   roboads_fleet --robots=32 --scenario=8 --iterations=120 --parity
//
// records a handful of distinct missions (cycling seeds), replays them as
// interleaved packet streams through a live FleetService (concurrent
// producers + pump thread), and reports fleet totals. With --parity every
// robot's streamed DetectionReports are compared bit-exactly against its
// source mission — the guarantee ./ci.sh fleet-smoke enforces.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "eval/khepera.h"
#include "eval/mission.h"
#include "fleet/replay.h"
#include "fleet/service.h"

namespace {

using namespace roboads;

struct Options {
  std::size_t robots = 32;
  std::size_t shards = 0;  // 0 = hardware
  std::size_t iterations = 120;
  std::size_t scenario = 8;  // 0 = clean
  std::uint64_t seed = 1;
  std::size_t missions = 4;  // distinct mission streams, cycled over robots
  bool parity = false;
  bool json = false;
};

int usage(std::ostream& os, int rc) {
  os << "usage: roboads_fleet [--robots=N] [--shards=N] [--iterations=N]\n"
        "                     [--scenario=N] [--seed=N] [--missions=N]\n"
        "                     [--parity] [--json]\n"
        "  --robots     fleet size (default 32)\n"
        "  --shards     detection shards; 0 = hardware concurrency\n"
        "  --iterations mission length per robot (default 120)\n"
        "  --scenario   Table II scenario number; 0 = attack-free\n"
        "  --seed       base mission seed (robot r uses seed + r % missions)\n"
        "  --missions   distinct recorded missions cycled over the fleet\n"
        "  --parity     verify every robot's streamed reports bit-exactly\n"
        "               against its source mission (exit 1 on mismatch)\n"
        "  --json       machine-readable fleet summary on stdout\n";
  return rc;
}

bool flag_value(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int run(const Options& o) {
  eval::KheperaPlatform platform;
  const auto spec = fleet::make_session_spec(platform);
  const attacks::Scenario scenario = o.scenario == 0
                                         ? platform.clean_scenario()
                                         : platform.table2_scenario(o.scenario);

  // Record the mission streams once; robots cycle over them.
  std::vector<eval::MissionResult> missions;
  for (std::size_t m = 0; m < std::min(o.missions, o.robots); ++m) {
    eval::MissionConfig cfg;
    cfg.iterations = o.iterations;
    cfg.seed = o.seed + m;
    missions.push_back(eval::run_mission(platform, scenario, cfg));
  }

  fleet::FleetConfig config;
  config.shards = o.shards;
  // Per-robot collected reports for parity (robot-disjoint writes; see
  // FleetConfig::on_report).
  std::vector<std::vector<core::DetectionReport>> streamed(o.robots);
  if (o.parity) {
    // Drop-oldest backpressure is correct service behavior but incompatible
    // with a bit-parity check: a shed packet is a masked step. Size each
    // shard's ring to hold its robots' entire streams so a slow pump (e.g.
    // a one-core box) backs the producers onto the queue instead of
    // shedding.
    const std::size_t shards =
        common::ThreadPool::resolve_thread_count(o.shards);
    const std::size_t per_shard = (o.robots + shards - 1) / shards;
    config.queue_capacity =
        per_shard * o.iterations * (platform.suite().count() + 1);
    config.on_report = [&streamed](std::uint64_t robot,
                                   const core::DetectionReport& report,
                                   std::uint64_t) {
      streamed[robot].push_back(report);
    };
  }
  fleet::FleetService service(config);
  for (std::size_t r = 0; r < o.robots; ++r) service.add_robot(spec);
  service.start();

  // Concurrent producers, one per hardware-ish slice of the fleet, each
  // interleaving its robots' packets iteration by iteration.
  const std::size_t producers =
      std::max<std::size_t>(1, std::min<std::size_t>(4, o.robots));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      std::size_t max_iters = 0;
      for (const eval::MissionResult& m : missions) {
        max_iters = std::max(max_iters, m.records.size());
      }
      std::vector<fleet::FleetPacket> batch;
      for (std::size_t i = 0; i < max_iters; ++i) {
        for (std::size_t r = t; r < o.robots; r += producers) {
          const eval::MissionResult& m = missions[r % missions.size()];
          if (i >= m.records.size()) continue;
          batch.clear();
          fleet::append_iteration_packets(batch, r, platform.suite(),
                                          m.records[i]);
          for (fleet::FleetPacket& p : batch) service.submit(std::move(p));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.drain();
  service.stop();
  service.flush_sessions();

  const fleet::FleetStatus status = service.status();

  std::size_t parity_failures = 0;
  if (o.parity) {
    for (std::size_t r = 0; r < o.robots; ++r) {
      const eval::MissionResult& m = missions[r % missions.size()];
      if (streamed[r].size() != m.records.size()) {
        std::cerr << "parity: robot " << r << " stepped " << streamed[r].size()
                  << " iterations, mission has " << m.records.size() << "\n";
        ++parity_failures;
        continue;
      }
      for (std::size_t i = 0; i < streamed[r].size(); ++i) {
        const std::string diff =
            fleet::compare_reports(m.records[i].report, streamed[r][i]);
        if (!diff.empty()) {
          std::cerr << "parity: robot " << r << " iteration "
                    << m.records[i].k << ": " << diff << "\n";
          ++parity_failures;
          break;
        }
      }
    }
  }

  if (o.json) {
    std::cout << "{\"robots\":" << o.robots << ",\"shards\":"
              << service.shard_count() << ",\"steps\":" << status.steps
              << ",\"sensor_alarms\":" << status.sensor_alarms
              << ",\"actuator_alarms\":" << status.actuator_alarms
              << ",\"quarantine_iterations\":" << status.quarantine_iterations
              << ",\"dropped_packets\":" << status.dropped_packets
              << ",\"forwarded_packets\":" << status.forwarded_packets
              << ",\"p50_ingest_to_step_ns\":"
              << status.ingest_to_step_ns.quantile(0.50)
              << ",\"p99_ingest_to_step_ns\":"
              << status.ingest_to_step_ns.quantile(0.99)
              << ",\"parity\":" << (o.parity ? "true" : "false")
              << ",\"parity_failures\":" << parity_failures << "}\n";
  } else {
    std::cout << "fleet     " << o.robots << " robots on "
              << service.shard_count() << " shards\n"
              << "steps     " << status.steps << " (sensor alarms "
              << status.sensor_alarms << ", actuator alarms "
              << status.actuator_alarms << ")\n"
              << "transport dropped " << status.dropped_packets
              << ", forwarded " << status.forwarded_packets << "\n"
              << "latency   ingest->step p50<="
              << status.ingest_to_step_ns.quantile(0.50) << "ns p99<="
              << status.ingest_to_step_ns.quantile(0.99) << "ns\n";
    if (o.parity) {
      std::cout << "parity    "
                << (parity_failures == 0 ? "bit-identical to serial missions"
                                         : "FAILED")
                << "\n";
    }
  }
  return parity_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    const auto parse_count = [&](std::size_t* out) {
      const auto n = roboads::common::parse_u64(value);
      if (!n) {
        std::cerr << "roboads_fleet: " << arg
                  << " expects a non-negative integer\n";
        return false;
      }
      *out = static_cast<std::size_t>(*n);
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (flag_value(arg, "--robots", &value)) {
      if (!parse_count(&o.robots)) return 2;
    } else if (flag_value(arg, "--shards", &value)) {
      if (!parse_count(&o.shards)) return 2;
    } else if (flag_value(arg, "--iterations", &value)) {
      if (!parse_count(&o.iterations)) return 2;
    } else if (flag_value(arg, "--scenario", &value)) {
      if (!parse_count(&o.scenario)) return 2;
    } else if (flag_value(arg, "--missions", &value)) {
      if (!parse_count(&o.missions)) return 2;
    } else if (flag_value(arg, "--seed", &value)) {
      const auto n = roboads::common::parse_u64(value);
      if (!n) {
        std::cerr << "roboads_fleet: --seed expects a non-negative integer\n";
        return 2;
      }
      o.seed = *n;
    } else if (arg == "--parity") {
      o.parity = true;
    } else if (arg == "--json") {
      o.json = true;
    } else {
      std::cerr << "roboads_fleet: unknown argument " << arg << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (o.robots == 0 || o.iterations == 0 || o.missions == 0) {
    std::cerr << "roboads_fleet: --robots, --iterations and --missions must "
                 "be positive\n";
    return 2;
  }
  try {
    return run(o);
  } catch (const std::exception& e) {
    std::cerr << "roboads_fleet: " << e.what() << "\n";
    return 2;
  }
}
