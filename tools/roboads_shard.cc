// Sharded campaign runner CLI (docs/ROBUSTNESS.md; ./ci.sh shard-smoke).
//
//   roboads_shard gen-table2 --out=FILE --seeds=N [--shards=N]
//                            [--iterations=N] [--seed=S]...
//   roboads_shard gen-fuzz   --out=FILE [--seed=N] [--campaigns=N]
//                            [--iterations=N] [--max-attacks=N]
//                            [--fault-probability=P] [--platform=NAME]...
//                            [--shards=N]
//   roboads_shard run        --manifest=FILE --dir=DIR [--resume] [--bundles]
//                            [--report=FILE] [--heartbeat-timeout=SECONDS]
//                            [--max-retries=N] [--salvage-waves=N]
//                            [--chaos-kills=N] [--chaos-stops=N]
//                            [--chaos-seed=N] [--telemetry-interval=SECONDS]
//                            [--status-interval=SECONDS]
//                            [--slow-job-grace=SECONDS]
//   roboads_shard serial     --manifest=FILE [--report=FILE] [--dir=DIR]
//                            [--bundles]
//   roboads_shard merge      --manifest=FILE --dir=DIR [--report=FILE]
//   roboads_shard worker     --manifest=FILE --dir=DIR --label=L
//                            [--shard=N] [--job=ID]... [--bundles]
//   roboads_shard watch      --dir=DIR [--manifest=FILE] [--once] [--json]
//                            [--interval=SECONDS]
//
// `run` spawns one supervised worker process per manifest shard (re-execing
// this binary), restarts crashed workers with backoff, SIGKILLs hung ones on
// heartbeat timeout, requeues permanently lost shards onto salvage workers,
// and merges every checkpoint into DIR/report.jsonl. A killed run — workers
// *or* supervisor — resumes from its checkpoints with `--resume`. The
// --chaos-* flags self-inject worker kills/hangs for testing; results must
// not change (./ci.sh shard-smoke asserts this against `serial`).
//
// `watch` is the live monitor ("roboads_top"): it renders the supervisor's
// status.json snapshot in a refresh loop (progress bar, per-worker rows,
// fleet detector-step latency quantiles). With --manifest it recomputes the
// status from the run directory's checkpoints/heartbeats/telemetry instead,
// which also works after the supervisor died. --once prints a single frame
// and exits; --json emits the raw status line for scripts and CI.
//
// Exit status: 0 = complete, all ok; 1 = complete with failed jobs or fuzz
// findings; 2 = usage/setup error; 3 = partial coverage (lost shards
// exhausted their retries and salvage waves).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "shard/checkpoint.h"
#include "shard/exec.h"
#include "shard/manifest.h"
#include "shard/merge.h"
#include "shard/status.h"
#include "shard/supervise.h"
#include "shard/worker.h"

namespace {

namespace fs = std::filesystem;
using namespace roboads::shard;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "roboads_shard: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: roboads_shard <gen-table2|gen-fuzz|run|serial|merge|"
               "watch|worker> [flags]\n(see tools/roboads_shard.cc for the "
               "full flag list)\n");
  std::exit(2);
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

std::size_t parse_count(const char* flag, const std::string& value,
                        bool allow_zero) {
  const auto parsed = roboads::common::parse_u64(value);
  if (!parsed) {
    usage_error(std::string(flag) + " expects a non-negative integer, got \"" +
                value + "\"");
  }
  if (!allow_zero && *parsed == 0) {
    usage_error(std::string(flag) + " must be positive");
  }
  return static_cast<std::size_t>(*parsed);
}

double parse_fraction(const char* flag, const std::string& value) {
  const auto parsed = roboads::common::parse_double(value);
  if (!parsed || *parsed < 0.0) {
    usage_error(std::string(flag) + " expects a non-negative number, got \"" +
                value + "\"");
  }
  return *parsed;
}

void write_report_file(const std::string& path, const MergedReport& report) {
  std::ofstream os(path, std::ios::binary);
  if (!os) usage_error("cannot write " + path);
  os << report.text;
  if (!os.flush()) usage_error("failed writing " + path);
}

int report_exit_code(const MergeStats& stats) {
  if (!stats.complete) return 3;
  if (stats.failed > 0 || stats.violations > 0) return 1;
  return 0;
}

void print_summary(const MergeStats& stats) {
  std::printf("%zu/%zu jobs merged: %zu ok, %zu failed, %zu violations",
              stats.completed, stats.total_jobs, stats.ok, stats.failed,
              stats.violations);
  if (!stats.complete) {
    std::printf(" — PARTIAL, %zu jobs missing", stats.missing_ids.size());
  }
  std::printf("\n");
}

int cmd_gen_table2(const std::vector<std::string>& args) {
  std::string out;
  std::size_t num_seeds = 5, shards = 4, iterations = 250;
  std::vector<std::uint64_t> seeds;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--out", &value)) out = value;
    else if (flag_value(arg, "--seeds", &value))
      num_seeds = parse_count("--seeds", value, false);
    else if (flag_value(arg, "--seed", &value))
      seeds.push_back(parse_count("--seed", value, true));
    else if (flag_value(arg, "--shards", &value))
      shards = parse_count("--shards", value, false);
    else if (flag_value(arg, "--iterations", &value))
      iterations = parse_count("--iterations", value, false);
    else usage_error("gen-table2: unknown argument \"" + arg + "\"");
  }
  if (out.empty()) usage_error("gen-table2: --out is required");
  if (seeds.empty()) seeds = default_seed_series(num_seeds);
  const Manifest manifest = table2_manifest(seeds, shards, iterations);
  write_manifest_file(out, manifest);
  std::printf("wrote %s: %zu jobs (%zu seeds x Table II) over %zu shards\n",
              out.c_str(), manifest.jobs.size(), seeds.size(), shards);
  return 0;
}

int cmd_gen_fuzz(const std::vector<std::string>& args) {
  std::string out;
  std::size_t shards = 4;
  roboads::scenario::FuzzConfig config;
  config.platforms.clear();
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--out", &value)) out = value;
    else if (flag_value(arg, "--seed", &value))
      config.seed = parse_count("--seed", value, true);
    else if (flag_value(arg, "--campaigns", &value))
      config.campaigns = parse_count("--campaigns", value, false);
    else if (flag_value(arg, "--iterations", &value))
      config.iterations = parse_count("--iterations", value, false);
    else if (flag_value(arg, "--max-attacks", &value))
      config.max_attacks = parse_count("--max-attacks", value, false);
    else if (flag_value(arg, "--fault-probability", &value))
      config.fault_probability = parse_fraction("--fault-probability", value);
    else if (flag_value(arg, "--platform", &value))
      config.platforms.push_back(value);
    else if (flag_value(arg, "--shards", &value))
      shards = parse_count("--shards", value, false);
    else usage_error("gen-fuzz: unknown argument \"" + arg + "\"");
  }
  if (out.empty()) usage_error("gen-fuzz: --out is required");
  if (config.platforms.empty()) {
    config.platforms = roboads::scenario::platform_names();
  }
  const Manifest manifest = fuzz_manifest(config, shards);
  write_manifest_file(out, manifest);
  std::printf("wrote %s: %zu fuzz campaigns over %zu shards\n", out.c_str(),
              manifest.jobs.size(), shards);
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string manifest_path, dir, report_path;
  bool resume = false, bundles = false;
  double telemetry_interval = 5.0;
  SupervisorConfig config;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--manifest", &value)) manifest_path = value;
    else if (flag_value(arg, "--dir", &value)) dir = value;
    else if (flag_value(arg, "--report", &value)) report_path = value;
    else if (arg == "--resume") resume = true;
    else if (arg == "--bundles") bundles = true;
    else if (flag_value(arg, "--heartbeat-timeout", &value))
      config.heartbeat_timeout_seconds =
          parse_fraction("--heartbeat-timeout", value);
    else if (flag_value(arg, "--telemetry-interval", &value)) {
      telemetry_interval = parse_fraction("--telemetry-interval", value);
      config.telemetry_interval_seconds = telemetry_interval;
    }
    else if (flag_value(arg, "--status-interval", &value))
      config.status_interval_seconds =
          parse_fraction("--status-interval", value);
    else if (flag_value(arg, "--slow-job-grace", &value))
      config.slow_job_grace_seconds = parse_fraction("--slow-job-grace", value);
    else if (flag_value(arg, "--max-retries", &value))
      config.retry.max_retries = parse_count("--max-retries", value, true);
    else if (flag_value(arg, "--salvage-waves", &value))
      config.salvage_waves = parse_count("--salvage-waves", value, true);
    else if (flag_value(arg, "--chaos-kills", &value))
      config.chaos_kills = parse_count("--chaos-kills", value, true);
    else if (flag_value(arg, "--chaos-stops", &value))
      config.chaos_stops = parse_count("--chaos-stops", value, true);
    else if (flag_value(arg, "--chaos-seed", &value))
      config.chaos_seed = parse_count("--chaos-seed", value, true);
    else usage_error("run: unknown argument \"" + arg + "\"");
  }
  if (manifest_path.empty() || dir.empty()) {
    usage_error("run: --manifest and --dir are required");
  }
  const Manifest manifest = read_manifest_file(manifest_path);

  // Refuse to silently mix two campaigns in one directory: an existing
  // checkpoint means either a resume (say so) or a stale directory.
  if (!resume && fs::exists(dir)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("checkpoint-", 0) == 0) {
        usage_error("run: " + dir + " already holds checkpoints — pass "
                    "--resume to continue that run, or a fresh --dir");
      }
    }
  }
  fs::create_directories(dir);

  const SuperviseResult supervised =
      supervise(manifest, dir, config,
                self_exec_launcher(manifest_path, dir, bundles,
                                   /*shrink_budget=*/120, telemetry_interval));
  std::printf(
      "supervision: %zu launches, %zu crashes, %zu hangs, %zu lost shards, "
      "%zu salvage workers, %zu slow-job grants\n",
      supervised.launches, supervised.crashes, supervised.hangs,
      supervised.lost_shards, supervised.salvage_workers,
      supervised.slow_job_grants);

  const MergedReport report = merge_run(manifest, dir);
  if (report_path.empty()) report_path = dir + "/report.jsonl";
  write_report_file(report_path, report);
  print_summary(report.stats);
  std::printf("report: %s\n", report_path.c_str());
  return report_exit_code(report.stats);
}

int cmd_serial(const std::vector<std::string>& args) {
  std::string manifest_path, dir, report_path;
  bool bundles = false;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--manifest", &value)) manifest_path = value;
    else if (flag_value(arg, "--dir", &value)) dir = value;
    else if (flag_value(arg, "--report", &value)) report_path = value;
    else if (arg == "--bundles") bundles = true;
    else usage_error("serial: unknown argument \"" + arg + "\"");
  }
  if (manifest_path.empty()) usage_error("serial: --manifest is required");
  if (bundles && dir.empty()) {
    usage_error("serial: --bundles needs --dir for the bundle files");
  }
  const Manifest manifest = read_manifest_file(manifest_path);
  if (!dir.empty()) fs::create_directories(dir);

  ExecConfig exec;
  exec.run_dir = dir;
  exec.record_bundles = bundles;
  std::vector<JobOutcome> outcomes;
  outcomes.reserve(manifest.jobs.size());
  for (const ManifestJob& job : manifest.jobs) {
    outcomes.push_back(execute_job(job, exec));
  }
  const MergedReport report = merge_outcomes(manifest, std::move(outcomes));
  if (report_path.empty() && !dir.empty()) report_path = dir + "/report.jsonl";
  if (!report_path.empty()) {
    write_report_file(report_path, report);
    std::printf("report: %s\n", report_path.c_str());
  } else {
    std::fputs(report.text.c_str(), stdout);
  }
  print_summary(report.stats);
  return report_exit_code(report.stats);
}

int cmd_watch(const std::vector<std::string>& args) {
  std::string dir, manifest_path;
  bool once = false, as_json = false;
  double interval = 1.0;
  double telemetry_interval = 5.0;  // liveness cadence of the watched run
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--dir", &value)) dir = value;
    else if (flag_value(arg, "--manifest", &value)) manifest_path = value;
    else if (arg == "--once") once = true;
    else if (arg == "--json") as_json = true;
    else if (flag_value(arg, "--interval", &value))
      interval = parse_fraction("--interval", value);
    else if (flag_value(arg, "--telemetry-interval", &value))
      telemetry_interval = parse_fraction("--telemetry-interval", value);
    else usage_error("watch: unknown argument \"" + arg + "\"");
  }
  if (dir.empty()) usage_error("watch: --dir is required");
  if (as_json && !once) {
    usage_error("watch: --json implies a single frame; pass --once too");
  }
  if (interval <= 0.0) interval = 1.0;

  // With a manifest the status is recomputed from the run directory's own
  // files (works mid-run, after a dead supervisor, or in CI); without one
  // it is read from the supervisor's atomically published snapshot.
  std::optional<Manifest> manifest;
  if (!manifest_path.empty()) manifest = read_manifest_file(manifest_path);

  while (true) {
    RunStatus status;
    if (manifest.has_value()) {
      status = build_status(*manifest, dir, {}, 0.0, telemetry_interval);
    } else {
      status = read_status_file(status_path(dir));
    }
    if (as_json) {
      std::printf("%s\n", serialize_status(status).c_str());
    } else {
      if (!once) std::printf("\033[H\033[2J");  // clear the terminal frame
      std::fputs(render_status(status).c_str(), stdout);
    }
    std::fflush(stdout);
    if (once || status.complete) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string manifest_path, dir, report_path;
  for (const std::string& arg : args) {
    std::string value;
    if (flag_value(arg, "--manifest", &value)) manifest_path = value;
    else if (flag_value(arg, "--dir", &value)) dir = value;
    else if (flag_value(arg, "--report", &value)) report_path = value;
    else usage_error("merge: unknown argument \"" + arg + "\"");
  }
  if (manifest_path.empty() || dir.empty()) {
    usage_error("merge: --manifest and --dir are required");
  }
  const MergedReport report =
      merge_run(read_manifest_file(manifest_path), dir);
  if (report_path.empty()) report_path = dir + "/report.jsonl";
  write_report_file(report_path, report);
  print_summary(report.stats);
  std::printf("report: %s\n", report_path.c_str());
  return report_exit_code(report.stats);
}

}  // namespace

int main(int argc, char** argv) {
  // Supervisor-spawned worker processes re-exec this binary with
  // --shard-worker before any subcommand parsing.
  if (argc >= 2 && std::strcmp(argv[1], "--shard-worker") == 0) {
    return worker_main({argv + 2, argv + argc});
  }
  if (argc < 2) usage_error("a command is required");
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "gen-table2") return cmd_gen_table2(args);
    if (command == "gen-fuzz") return cmd_gen_fuzz(args);
    if (command == "run") return cmd_run(args);
    if (command == "serial") return cmd_serial(args);
    if (command == "merge") return cmd_merge(args);
    if (command == "watch") return cmd_watch(args);
    if (command == "worker") return worker_main(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "roboads_shard %s: %s\n", command.c_str(), e.what());
    return 2;
  }
  usage_error("unknown command \"" + command + "\"");
}
