// roboads_explain — render and verify postmortem bundles
// (docs/OBSERVABILITY.md "Flight recorder & incident bundles").
//
//   roboads_explain [--verify] [--alarms-out=PATH] <bundle.jsonl>...
//
// For each bundle: prints the human-readable incident report — trigger,
// provenance, ground-truth-vs-attribution, time-to-alarm, mode-likelihood
// race, per-iteration timeline. With --verify the bundle's window is also
// re-run through a freshly built detector (eval/replay.h) and every recorded
// output is compared bit for bit; any divergence fails the run (exit 1).
// --alarms-out writes the *replayed* per-iteration alarms of the first
// bundle as "k,sensor_alarm,actuator_alarm" CSV, which lets CI diff the
// replay against the live mission's alarm timeline.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "eval/replay.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--verify] [--alarms-out=PATH] <bundle.jsonl>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using roboads::eval::ReplayResult;
  bool verify = false;
  std::string alarms_out;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
    } else if (arg.rfind("--alarms-out=", 0) == 0) {
      alarms_out = arg.substr(std::strlen("--alarms-out="));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  bool all_identical = true;
  bool alarms_written = false;
  for (const std::string& path : paths) {
    try {
      const roboads::obs::PostmortemBundle bundle =
          roboads::obs::read_bundle_file(path);
      ReplayResult replay;
      if (verify) replay = roboads::eval::replay_bundle(bundle);
      std::cout << "bundle: " << path << "\n"
                << roboads::eval::explain_bundle(bundle,
                                                 verify ? &replay : nullptr);
      if (verify && !replay.identical()) all_identical = false;
      if (verify && !alarms_out.empty() && !alarms_written) {
        std::ofstream os(alarms_out);
        if (!os) {
          std::fprintf(stderr, "cannot write %s\n", alarms_out.c_str());
          return 2;
        }
        os << "k,sensor_alarm,actuator_alarm\n";
        for (const roboads::obs::FlightRecord& r : replay.records) {
          os << r.k << ',' << (r.sensor_alarm ? 1 : 0) << ','
             << (r.actuator_alarm ? 1 : 0) << '\n';
        }
        alarms_written = true;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      return 2;
    }
  }
  return all_identical ? 0 : 1;
}
